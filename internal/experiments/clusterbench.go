package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/htacs/ata/internal/cluster"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/workload"
)

// PR7Point is one (node count, batching mode) measurement of the cluster
// gateway on the pr5 churn workload: single-shard nodes behind real
// loopback HTTP listeners, the gateway scatter-gathering placements and
// routing completions over the batched RPC plane. As in pr5, total
// buffer capacity is fixed across node counts (per-node limit =
// TotalBuffer/Nodes), so the sweep isolates backlog partitioning — each
// Complete's pullBest scan shrinks with the cluster — on top of which
// the RPC layer must not give the win back.
type PR7Point struct {
	Nodes       int `json:"nodes"`
	MaxBatch    int `json:"max_batch"` // 1 = unbatched control
	Workers     int `json:"workers"`
	Churners    int `json:"churn_workers"`
	TotalBuffer int `json:"total_buffer"`
	Events      int `json:"events"`

	PerEventNs   int64   `json:"per_event_ns"` // median over runs
	EventsPerSec float64 `json:"events_per_sec"`

	// RPC-plane coalescing: ops carried per frame (higher = fewer HTTP
	// round trips for the same logical work).
	FramesSent  int64   `json:"frames_sent"`
	OpsSent     int64   `json:"ops_sent"`
	OpsPerFrame float64 `json:"ops_per_frame"`

	Completed int64 `json:"completed"`
	Dropped   int64 `json:"dropped"`
	Conserved bool  `json:"conserved"`
}

// PR7Report is the payload of BENCH_PR7.json: gateway event throughput
// at 1/2/4 nodes, batched against the MaxBatch=1 control, with the
// acceptance targets of >= 2x aggregate throughput at 4 nodes over 1 and
// batched beating unbatched at every node count.
type PR7Report struct {
	Note      string     `json:"note"`
	Batched   []PR7Point `json:"batched"`
	Unbatched []PR7Point `json:"unbatched"`

	SpeedupAt4            float64 `json:"speedup_at_4"`
	TargetSpeedup         float64 `json:"target_speedup"`
	BatchedBeatsUnbatched bool    `json:"batched_beats_unbatched"`
	MeetsTarget           bool    `json:"meets_target"`
}

// pr7Shape fixes the workload replayed at every node count. Concurrency
// (drivers) is what gives the per-peer mailboxes something to coalesce:
// G in-flight ops per moment means score scatters and commits from
// different drivers share frames. The timed mix is complete-dominated
// (completesPerOffer completions per fresh task), matching the pr5
// steady state: completions route to one pinned node and pay the
// pullBest fold over that node's share of the backlog, which is the
// work the cluster partitions; offers scatter a score op to every node
// and so grow more expensive with the cluster, which is the overhead
// the batching must absorb.
type pr7Shape struct {
	workers           int
	churners          int
	xmax              int
	totalBuffer       int
	steps             int // timed steps per driver
	completesPerOffer int
	drivers           int
	departFrac        float64
}

var defaultPR7Shape = pr7Shape{
	workers:           32,
	churners:          8,
	xmax:              12,
	totalBuffer:       32768,
	steps:             40,
	completesPerOffer: 4,
	drivers:           32,
	departFrac:        0.6,
}

// totalEvents is the logical event count of the timed phase: every
// complete and every offer is one event.
func (s pr7Shape) totalEvents() int {
	return s.drivers * s.steps * (s.completesPerOffer + 1)
}

// SweepPR7 measures gateway event throughput at 1, 2 and 4 nodes, each
// node count in batched (default frame coalescing) and unbatched
// (MaxBatch=1, one op per HTTP request) modes. Conservation of the
// merged accounting is asserted on every run.
func SweepPR7(o Options) (*PR7Report, error) {
	o.applyDefaults()
	report := &PR7Report{
		Note: "cluster gateway event throughput over real loopback HTTP: single-shard nodes, total buffer capacity fixed across node counts, complete-dominated churn workload (4 completions per fresh offer, the pr5 steady state) driven by 32 concurrent clients; batched frames vs a MaxBatch=1 per-op control.",
		// Acceptance bar from the PR issue: 4 nodes must clear 2x the
		// single-node aggregate event rate, and batching must never lose
		// to the per-op control.
		TargetSpeedup:         2.0,
		BatchedBeatsUnbatched: true,
	}
	shape := defaultPR7Shape
	var oneNode int64
	for _, nodes := range []int{1, 2, 4} {
		batched, err := measurePR7(o, nodes, 0, shape)
		if err != nil {
			return nil, fmt.Errorf("experiments: pr7 nodes=%d batched: %w", nodes, err)
		}
		unbatched, err := measurePR7(o, nodes, 1, shape)
		if err != nil {
			return nil, fmt.Errorf("experiments: pr7 nodes=%d unbatched: %w", nodes, err)
		}
		report.Batched = append(report.Batched, batched)
		report.Unbatched = append(report.Unbatched, unbatched)
		if batched.PerEventNs >= unbatched.PerEventNs {
			report.BatchedBeatsUnbatched = false
		}
		if nodes == 1 {
			oneNode = batched.PerEventNs
		}
		if nodes == 4 && oneNode > 0 && batched.PerEventNs > 0 {
			report.SpeedupAt4 = float64(oneNode) / float64(batched.PerEventNs)
		}
	}
	report.MeetsTarget = report.SpeedupAt4 >= report.TargetSpeedup && report.BatchedBeatsUnbatched
	return report, nil
}

// measurePR7 times the event loop at one (nodes, maxBatch) point, o.Runs
// times, reporting the median.
func measurePR7(o Options, nodes, maxBatch int, shape pr7Shape) (PR7Point, error) {
	point := PR7Point{
		Nodes:       nodes,
		MaxBatch:    maxBatch,
		Workers:     shape.workers,
		Churners:    shape.churners,
		TotalBuffer: shape.totalBuffer,
		Events:      shape.totalEvents(),
	}
	if maxBatch == 0 {
		point.MaxBatch = 64 // the gateway default, recorded explicitly
	}
	var samples []time.Duration
	for run := 0; run < o.Runs; run++ {
		res, err := runPR7(o.Seed+int64(run), nodes, maxBatch, shape)
		if err != nil {
			return point, err
		}
		if !res.conserved {
			return point, fmt.Errorf("conservation violated on run %d", run)
		}
		samples = append(samples, res.elapsed)
		point.Completed, point.Dropped, point.Conserved = res.completed, res.dropped, res.conserved
		point.FramesSent, point.OpsSent = res.frames, res.ops
	}
	point.PerEventNs = medianNs(samples) / int64(shape.totalEvents())
	if point.PerEventNs > 0 {
		point.EventsPerSec = 1e9 / float64(point.PerEventNs)
	}
	if point.FramesSent > 0 {
		point.OpsPerFrame = float64(point.OpsSent) / float64(point.FramesSent)
	}
	return point, nil
}

// pr7Run is one seeded run's outcome.
type pr7Run struct {
	elapsed   time.Duration
	completed int64
	dropped   int64
	frames    int64
	ops       int64
	conserved bool
}

// pr7Cluster is the in-process cluster under test: N single-shard
// engines, each behind its own loopback HTTP listener serving the
// cluster RPC plane, and the gateway routing across them.
type pr7Cluster struct {
	gw      *cluster.Gateway
	engines []*shard.Engine
	servers []*http.Server
	lns     []net.Listener
}

func startPR7Cluster(nodes, maxBatch int, shape pr7Shape) (*pr7Cluster, error) {
	c := &pr7Cluster{}
	var peers []cluster.PeerSpec
	for i := 0; i < nodes; i++ {
		eng, err := shard.New(shard.Config{
			Shards:        1,
			StealInterval: -1, // cluster nodes must not steal: stolen tasks escape the gateway ledger
			Registry:      obs.NewRegistry(),
			Stream: stream.Config{
				Xmax:        shape.xmax,
				BufferLimit: shape.totalBuffer / nodes,
			},
		})
		if err != nil {
			c.stop()
			return nil, err
		}
		c.engines = append(c.engines, eng)
		name := fmt.Sprintf("n%d", i)
		node, err := cluster.NewNode(cluster.NodeConfig{Name: name, Engine: eng})
		if err != nil {
			c.stop()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.stop()
			return nil, err
		}
		srv := &http.Server{Handler: node}
		go srv.Serve(ln)
		c.lns = append(c.lns, ln)
		c.servers = append(c.servers, srv)
		peers = append(peers, cluster.PeerSpec{Name: name, URL: "http://" + ln.Addr().String()})
	}
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Peers:             peers,
		MaxBatch:          maxBatch,
		HeartbeatInterval: -1, // no failures in the bench; probing would only add noise
		Registry:          obs.NewRegistry(),
		Logger:            slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		c.stop()
		return nil, err
	}
	c.gw = gw
	return c, nil
}

func (c *pr7Cluster) stop() {
	if c.gw != nil {
		c.gw.Close()
	}
	for _, srv := range c.servers {
		srv.Close()
	}
	for _, eng := range c.engines {
		eng.Close()
	}
}

// runPR7 executes one seeded run: fill the cluster to steady state
// (untimed, concurrent so the fill itself exercises coalescing), then
// drive the timed loop of Complete+Offer pairs from shape.drivers
// concurrent clients with churn arrivals and departures interleaved.
func runPR7(seed int64, nodes, maxBatch int, shape pr7Shape) (pr7Run, error) {
	c, err := startPR7Cluster(nodes, maxBatch, shape)
	if err != nil {
		return pr7Run{}, err
	}
	defer c.stop()
	return drivePR7(c, seed, shape)
}

// drivePR7 replays one seeded churn workload through an already-started
// cluster — fill to steady state (untimed), then the timed driver loop —
// and reports the run outcome. Shared by the pr7 throughput sweep and the
// pr9 observability-overhead sweep, which differ only in how the cluster
// is constructed.
func drivePR7(c *pr7Cluster, seed int64, shape pr7Shape) (pr7Run, error) {
	gen, err := workload.NewGenerator(workload.Config{Seed: seed})
	if err != nil {
		return pr7Run{}, err
	}
	pool := gen.Workers(shape.workers + shape.churners)
	base, churners := pool[:shape.workers], pool[shape.workers:]
	byID := make(map[string]*core.Worker, len(churners))
	for _, w := range churners {
		byID[w.ID] = w
	}
	churn, err := gen.Churn(churners, shape.steps, shape.departFrac)
	if err != nil {
		return pr7Run{}, err
	}
	need := shape.workers*shape.xmax + shape.totalBuffer + shape.drivers*shape.steps + 64
	tasks := gen.Tasks(need/8+1, 8)[:need]
	ctx := context.Background()

	for _, w := range base {
		if _, err := c.gw.AddWorkerCtx(ctx, w); err != nil {
			return pr7Run{}, err
		}
	}

	// Fill phase (untimed): saturate every worker slot, then the buffers.
	// Offered concurrently — sequential RPC round trips would never share
	// a frame and the fill would dominate the wall clock.
	fill := shape.workers*shape.xmax + shape.totalBuffer
	if err := pr7Concurrent(shape.drivers, tasks[:fill], func(t *core.Task) error {
		if _, err := c.gw.OfferTaskCtx(ctx, t); err != nil && !errors.Is(err, stream.ErrBufferFull) {
			return err
		}
		return nil
	}); err != nil {
		return pr7Run{}, err
	}

	// Each driver owns a disjoint slice of the base workers and completes
	// only its own assignments, so the active-task records need no locks.
	type driverState struct {
		workers []*core.Worker
		active  map[string][]string
		offers  []*core.Task
	}
	drivers := make([]*driverState, shape.drivers)
	for d := range drivers {
		drivers[d] = &driverState{active: make(map[string][]string)}
	}
	for i, w := range base {
		d := drivers[i%shape.drivers]
		d.workers = append(d.workers, w)
		ids, err := c.gw.ActiveTasks(w.ID)
		if err != nil {
			return pr7Run{}, err
		}
		for _, t := range ids {
			d.active[w.ID] = append(d.active[w.ID], t.ID)
		}
	}
	for i, t := range tasks[fill:] {
		d := drivers[i%shape.drivers]
		if len(d.offers) < shape.steps {
			d.offers = append(d.offers, t)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, shape.drivers)
	start := time.Now()
	for di, d := range drivers {
		wg.Add(1)
		go func(di int, d *driverState) {
			defer wg.Done()
			churnIdx := 0
			for step := 0; step < shape.steps; step++ {
				// Driver 0 replays the churn trace on the shared step clock.
				if di == 0 {
					for churnIdx < len(churn) && churn[churnIdx].At <= step {
						ev := churn[churnIdx]
						churnIdx++
						if ev.Arrive {
							if _, err := c.gw.AddWorkerCtx(ctx, byID[ev.Worker]); err != nil {
								errCh <- err
								return
							}
						} else if _, err := c.gw.RemoveWorkerCtx(ctx, ev.Worker); err != nil {
							errCh <- err
							return
						}
					}
				}
				// The complete-dominated burst: each completion frees a slot
				// and pulls the best buffered task on the worker's node —
				// the B/N fold the cluster exists to shrink.
				w := d.workers[step%len(d.workers)]
				for b := 0; b < shape.completesPerOffer; b++ {
					ids := d.active[w.ID]
					if len(ids) == 0 {
						break
					}
					next, err := c.gw.CompleteCtx(ctx, w.ID, ids[0])
					if err != nil {
						errCh <- fmt.Errorf("complete %s on %s: %w", ids[0], w.ID, err)
						return
					}
					d.active[w.ID] = ids[1:]
					if next != nil {
						d.active[w.ID] = append(d.active[w.ID], next.ID)
					}
				}
				if step < len(d.offers) {
					if _, err := c.gw.OfferTaskCtx(ctx, d.offers[step]); err != nil && !errors.Is(err, stream.ErrBufferFull) {
						errCh <- err
						return
					}
				}
			}
		}(di, d)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return pr7Run{}, err
	}

	st := c.gw.Stats()
	return pr7Run{
		elapsed:   elapsed,
		completed: st.Completed,
		dropped:   st.Dropped,
		frames:    c.gw.FramesSent(),
		ops:       c.gw.OpsSent(),
		conserved: st.Conserved(),
	}, nil
}

// pr7Concurrent fans items over n workers, stopping on the first error.
func pr7Concurrent(n int, items []*core.Task, f func(*core.Task) error) error {
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(items); i += n {
				if err := f(items[i]); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// RenderPR7 prints the report as an aligned table, batched and control
// side by side.
func (r *PR7Report) RenderPR7(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%6s %9s %12s %12s %10s %9s %10s\n",
		"nodes", "mode", "per-event", "events/s", "ops/frame", "completed", "dropped"); err != nil {
		return err
	}
	var base int64
	if len(r.Batched) > 0 {
		base = r.Batched[0].PerEventNs
	}
	row := func(p PR7Point, mode string) error {
		speed := ""
		if mode == "batched" && base > 0 && p.PerEventNs > 0 {
			speed = fmt.Sprintf("  (%.2fx)", float64(base)/float64(p.PerEventNs))
		}
		_, err := fmt.Fprintf(w, "%6d %9s %10dns %12.0f %10.1f %9d %10d%s\n",
			p.Nodes, mode, p.PerEventNs, p.EventsPerSec, p.OpsPerFrame, p.Completed, p.Dropped, speed)
		return err
	}
	for i := range r.Batched {
		if err := row(r.Batched[i], "batched"); err != nil {
			return err
		}
		if i < len(r.Unbatched) {
			if err := row(r.Unbatched[i], "perOp"); err != nil {
				return err
			}
		}
	}
	verdict := "meets"
	if !r.MeetsTarget {
		verdict = "MISSES"
	}
	batching := "batched beats the per-op control at every node count"
	if !r.BatchedBeatsUnbatched {
		batching = "batching LOST to the per-op control at some node count"
	}
	_, err := fmt.Fprintf(w, "\n4-node speedup %.2fx — %s the %.1fx target; %s (total buffer fixed, conservation checked per run)\n",
		r.SpeedupAt4, verdict, r.TargetSpeedup, batching)
	return err
}

// WritePR7JSON writes the BENCH_PR7.json payload.
func (r *PR7Report) WritePR7JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
