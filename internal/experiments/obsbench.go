package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/solver"
	"github.com/htacs/ata/internal/workload"
)

// PR3Point is one obs-overhead measurement: the same solver workload run
// with the telemetry layer recording (the shipped default) and with
// obs.SetEnabled(false) (every instrument write reduced to one atomic
// load). Times are averaged ns/op over the sweep's runs on identical
// instances and seeds.
type PR3Point struct {
	Algorithm string `json:"algorithm"`
	NumTasks  int    `json:"tasks"`
	Workers   int    `json:"workers"`

	EnabledNs  int64 `json:"enabled_ns"`
	DisabledNs int64 `json:"disabled_ns"`
	// OverheadPct = 100·(EnabledNs − DisabledNs)/DisabledNs. Negative
	// values are measurement noise — the true overhead is a handful of
	// atomic operations per solver run.
	OverheadPct float64 `json:"overhead_pct"`
}

// PR3Report is the payload of BENCH_PR3.json: the observability layer's
// cost on the hta-bench -fig pr2 solver workload, with the acceptance
// budget of 2%.
type PR3Report struct {
	Note           string     `json:"note"`
	Points         []PR3Point `json:"points"`
	MaxOverheadPct float64    `json:"max_overhead_pct"`
	BudgetPct      float64    `json:"budget_pct"`
	WithinBudget   bool       `json:"within_budget"`
}

// SweepPR3 measures the obs instrumentation overhead on the PR 2 solver
// workload points (hta-app and hta-gre at |T| ∈ {400, 700, 1000},
// |W| = 20): each point solved o.Runs times with telemetry enabled and
// o.Runs times disabled, interleaved so drift hits both sides equally.
func SweepPR3(o Options) (*PR3Report, error) {
	o.applyDefaults()
	defer obs.SetEnabled(true)
	report := &PR3Report{
		Note:      "obs overhead on the -fig pr2 solver workload: enabled = shipped default, disabled = obs.SetEnabled(false). Identical instances and seeds, WithoutFlip.",
		BudgetPct: 2.0,
	}
	for _, numTasks := range []int{400, 700, 1000} {
		const numGroups, numWorkers = 20, 20
		for _, algo := range []string{"hta-app", "hta-gre"} {
			point, err := measurePR3(o, algo, numTasks, numGroups, numWorkers)
			if err != nil {
				return nil, fmt.Errorf("experiments: pr3 %s |T|=%d: %w", algo, numTasks, err)
			}
			report.Points = append(report.Points, point)
			if point.OverheadPct > report.MaxOverheadPct {
				report.MaxOverheadPct = point.OverheadPct
			}
		}
	}
	report.WithinBudget = report.MaxOverheadPct < report.BudgetPct
	return report, nil
}

// measurePR3 times one algorithm with telemetry on and off. The enabled
// and disabled runs alternate (on, off, on, off, …) so thermal and cache
// drift does not bias one side.
func measurePR3(o Options, algo string, numTasks, numGroups, numWorkers int) (PR3Point, error) {
	point := PR3Point{Algorithm: algo, NumTasks: numTasks, Workers: numWorkers}
	solve := solver.HTAGRE
	if algo == "hta-app" {
		solve = solver.HTAAPP
	}
	perGroup := numTasks / numGroups
	if perGroup < 1 {
		perGroup = 1
	}
	var onRuns, offRuns []time.Duration
	for run := 0; run < o.Runs; run++ {
		gen, err := workload.NewGenerator(workload.Config{Seed: o.Seed + int64(run)})
		if err != nil {
			return point, err
		}
		tasks := gen.Tasks(numGroups, perGroup)
		workers := gen.Workers(numWorkers)
		seed := o.Seed + int64(run)

		measureOne := func(enabled bool) (time.Duration, error) {
			in, err := core.NewInstance(tasks, workers, o.Xmax, metric.Jaccard{})
			if err != nil {
				return 0, err
			}
			obs.SetEnabled(enabled)
			start := time.Now()
			_, err = solve(in, solver.WithoutFlip(),
				solver.WithRand(rand.New(rand.NewSource(seed))))
			elapsed := time.Since(start)
			obs.SetEnabled(true)
			return elapsed, err
		}

		if run == 0 {
			// Warm-up: the first solve of a point pays one-time costs
			// (allocator growth, branch training) that must not land on
			// either side of the comparison.
			if _, err := measureOne(true); err != nil {
				return point, err
			}
		}
		// Alternate which side goes first so per-run drift cancels.
		order := []bool{true, false}
		if run%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, enabled := range order {
			d, err := measureOne(enabled)
			if err != nil {
				return point, err
			}
			if enabled {
				onRuns = append(onRuns, d)
			} else {
				offRuns = append(offRuns, d)
			}
		}
	}
	// Median, not mean: the true per-solve cost is a handful of atomic
	// operations, far below the run-to-run noise (GC pauses, scheduler
	// jitter) that a mean would let a single outlier dominate.
	point.EnabledNs = medianNs(onRuns)
	point.DisabledNs = medianNs(offRuns)
	if point.DisabledNs > 0 {
		point.OverheadPct = 100 * float64(point.EnabledNs-point.DisabledNs) / float64(point.DisabledNs)
	}
	return point, nil
}

// medianNs returns the median of the samples in nanoseconds.
func medianNs(ds []time.Duration) int64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid].Nanoseconds()
	}
	return (sorted[mid-1].Nanoseconds() + sorted[mid].Nanoseconds()) / 2
}

// RenderPR3 prints the report as an aligned table.
func (r *PR3Report) RenderPR3(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-10s %7s %7s %14s %14s %10s\n",
		"algorithm", "|T|", "|W|", "obs on (ms)", "obs off (ms)", "overhead"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%-10s %7d %7d %14.3f %14.3f %9.2f%%\n",
			p.Algorithm, p.NumTasks, p.Workers,
			float64(p.EnabledNs)/1e6, float64(p.DisabledNs)/1e6, p.OverheadPct); err != nil {
			return err
		}
	}
	verdict := "within"
	if !r.WithinBudget {
		verdict = "OVER"
	}
	_, err := fmt.Fprintf(w, "\nmax overhead %.2f%% — %s the %.0f%% budget\n",
		r.MaxOverheadPct, verdict, r.BudgetPct)
	return err
}

// WritePR3JSON writes the BENCH_PR3.json payload.
func (r *PR3Report) WritePR3JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
