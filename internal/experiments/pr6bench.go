package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// PR6Baseline is the reference point the pr6 sweep is judged against: the
// single-shard row of a BENCH_PR5.json generated before the incremental
// gain cache landed. The pr6 hot-path work — cached gains folded on read,
// packed-row distance kernels, batched mailbox drains, zero-alloc steady
// state — is a same-workload optimisation, so the speedup is directly the
// ratio of per-event times on the identical churn workload.
type PR6Baseline struct {
	Source       string  `json:"source"` // e.g. "BENCH_PR5.json shards=1"
	PerEventNs   int64   `json:"per_event_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// PR6Report is the payload of BENCH_PR6.json: the pr5 churn workload
// re-measured at every shard count on the incremental hot path, with the
// single-shard speedup over the recorded pre-optimisation baseline as the
// acceptance figure.
type PR6Report struct {
	Note          string      `json:"note"`
	Baseline      PR6Baseline `json:"baseline"`
	Points        []PR5Point  `json:"points"`
	SpeedupAt1    float64     `json:"speedup_at_1"`
	TargetSpeedup float64     `json:"target_speedup"`
	MeetsTarget   bool        `json:"meets_target"`
}

// DefaultPR6Target is the acceptance bar from the PR issue: the
// single-shard event rate must clear 5x the pre-optimisation baseline.
const DefaultPR6Target = 5.0

// PR5BaselineFromJSON extracts the single-shard point of a BENCH_PR5.json
// payload as the pr6 baseline.
func PR5BaselineFromJSON(data []byte, source string) (PR6Baseline, error) {
	var old PR5Report
	if err := json.Unmarshal(data, &old); err != nil {
		return PR6Baseline{}, fmt.Errorf("experiments: pr6 baseline: %w", err)
	}
	for _, p := range old.Points {
		if p.Shards == 1 && p.PerEventNs > 0 {
			return PR6Baseline{
				Source:       source + " shards=1",
				PerEventNs:   p.PerEventNs,
				EventsPerSec: p.EventsPerSec,
			}, nil
		}
	}
	return PR6Baseline{}, fmt.Errorf("experiments: pr6 baseline: no usable shards=1 point in %s", source)
}

// SweepPR6 re-runs the pr5 churn workload (same shape, same shard counts,
// same conservation checks) on the current engine and reports the
// single-shard speedup against baseline. target <= 0 selects
// DefaultPR6Target.
func SweepPR6(o Options, baseline PR6Baseline, target float64) (*PR6Report, error) {
	o.applyDefaults()
	if target <= 0 {
		target = DefaultPR6Target
	}
	report := &PR6Report{
		Note:          "incremental hot path on the pr5 churn workload: cached gain rows folded on read, packed-row distance kernels, batched mailbox drains, zero-alloc steady state; speedup is per-event time at 1 shard vs the recorded pre-optimisation baseline on the identical workload.",
		Baseline:      baseline,
		TargetSpeedup: target,
	}
	shape := defaultPR5Shape
	for _, shards := range []int{1, 2, 4, 8} {
		point, err := measurePR5(o, shards, shape)
		if err != nil {
			return nil, fmt.Errorf("experiments: pr6 shards=%d: %w", shards, err)
		}
		report.Points = append(report.Points, point)
		if shards == 1 && baseline.PerEventNs > 0 && point.PerEventNs > 0 {
			report.SpeedupAt1 = float64(baseline.PerEventNs) / float64(point.PerEventNs)
		}
	}
	report.MeetsTarget = report.SpeedupAt1 >= report.TargetSpeedup
	return report, nil
}

// RenderPR6 prints the report as an aligned table.
func (r *PR6Report) RenderPR6(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "baseline: %s — %dns/event (%.0f events/s)\n\n",
		r.Baseline.Source, r.Baseline.PerEventNs, r.Baseline.EventsPerSec); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%7s %8s %7s %8s %13s %12s %10s %9s\n",
		"shards", "workers", "buffer", "events", "per-event", "events/s", "completed", "dropped"); err != nil {
		return err
	}
	for _, p := range r.Points {
		speed := ""
		if r.Baseline.PerEventNs > 0 && p.PerEventNs > 0 {
			speed = fmt.Sprintf("  (%.2fx baseline)", float64(r.Baseline.PerEventNs)/float64(p.PerEventNs))
		}
		if _, err := fmt.Fprintf(w, "%7d %8d %7d %8d %11dns %12.0f %10d %9d%s\n",
			p.Shards, p.Workers+p.Churners, p.TotalBuffer, 2*p.Events,
			p.PerEventNs, p.EventsPerSec, p.Completed, p.Dropped, speed); err != nil {
			return err
		}
	}
	verdict := "meets"
	if !r.MeetsTarget {
		verdict = "MISSES"
	}
	_, err := fmt.Fprintf(w, "\nsingle-shard speedup %.2fx — %s the %.1fx target (same workload, conservation checked per run)\n",
		r.SpeedupAt1, verdict, r.TargetSpeedup)
	return err
}

// WritePR6JSON writes the BENCH_PR6.json payload.
func (r *PR6Report) WritePR6JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
