package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlattenNumbers(t *testing.T) {
	doc := []byte(`{"note":"x","points":[{"solve_ns":100,"ok":true},{"solve_ns":250.5}],"budget_pct":2}`)
	nums, err := FlattenNumbers(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"points.0.solve_ns": 100,
		"points.1.solve_ns": 250.5,
		"budget_pct":        2,
	}
	if len(nums) != len(want) {
		t.Fatalf("flattened %d keys, want %d: %v", len(nums), len(want), nums)
	}
	for k, v := range want {
		if nums[k] != v {
			t.Fatalf("key %s = %v, want %v", k, nums[k], v)
		}
	}
}

func TestCompareBenchJSONDetectsRegression(t *testing.T) {
	oldDoc := []byte(`{"points":[{"algorithm":"hta-app","solve_ns":1000000},{"algorithm":"hta-gre","solve_ns":2000000}]}`)
	// First point +50% (injected regression), second point within noise.
	newDoc := []byte(`{"points":[{"algorithm":"hta-app","solve_ns":1500000},{"algorithm":"hta-gre","solve_ns":2050000}]}`)

	deltas, missing, regressed, err := CompareBenchJSON(oldDoc, newDoc, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("injected +50% slowdown not flagged as regression")
	}
	if len(missing) != 0 {
		t.Fatalf("unexpected missing keys: %v", missing)
	}
	if len(deltas) != 2 {
		t.Fatalf("compared %d keys, want 2", len(deltas))
	}
	if !deltas[0].Regressed || deltas[0].Key != "points.0.solve_ns" {
		t.Fatalf("first delta = %+v, want points.0.solve_ns regressed", deltas[0])
	}
	if deltas[1].Regressed {
		t.Fatalf("+2.5%% flagged as regression: %+v", deltas[1])
	}

	var buf bytes.Buffer
	if err := RenderBenchDeltas(&buf, deltas, missing, 0.10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "1 regression(s)") {
		t.Fatalf("rendered table lacks regression verdict:\n%s", out)
	}
}

func TestCompareBenchJSONCleanAndMissing(t *testing.T) {
	oldDoc := []byte(`{"a_ns":100,"gone_ns":5,"label":"x"}`)
	newDoc := []byte(`{"a_ns":95,"fresh_ns":7}`)
	deltas, missing, regressed, err := CompareBenchJSON(oldDoc, newDoc, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("a 5% speedup flagged as regression")
	}
	if len(deltas) != 1 || deltas[0].Key != "a_ns" {
		t.Fatalf("deltas = %+v, want just a_ns", deltas)
	}
	if len(missing) != 1 || missing[0] != "gone_ns" {
		t.Fatalf("missing = %v, want [gone_ns]", missing)
	}
	var buf bytes.Buffer
	if err := RenderBenchDeltas(&buf, deltas, missing, 0.10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Fatalf("clean comparison verdict missing:\n%s", buf.String())
	}

	if _, _, _, err := CompareBenchJSON([]byte("{oops"), newDoc, 0.10); err == nil {
		t.Fatal("malformed old report accepted")
	}
}
