package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/htacs/ata/internal/crowd"
)

// tinyOptions shrink the paper's sweeps hard so tests stay quick.
func tinyOptions() Options {
	return Options{Scale: 0.02, Runs: 1, Seed: 5}
}

func TestSweepTasksShape(t *testing.T) {
	rows, err := SweepTasks(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 7 sizes × 2 algorithms.
	if len(rows) != 14 {
		t.Fatalf("got %d rows, want 14", len(rows))
	}
	byAlgo := map[string][]Row{}
	for _, r := range rows {
		byAlgo[r.Algorithm] = append(byAlgo[r.Algorithm], r)
		if r.TotalSeconds < 0 || r.Objective <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
	}
	if len(byAlgo["hta-app"]) != 7 || len(byAlgo["hta-gre"]) != 7 {
		t.Fatalf("rows per algorithm: %d app, %d gre", len(byAlgo["hta-app"]), len(byAlgo["hta-gre"]))
	}
	// Figure 2b property: objectives are comparable (GRE within 2x of APP).
	for i := range byAlgo["hta-app"] {
		app, gre := byAlgo["hta-app"][i], byAlgo["hta-gre"][i]
		if app.NumTasks != gre.NumTasks {
			t.Fatalf("row alignment broken")
		}
		if gre.Objective < app.Objective/2 {
			t.Errorf("|T|=%d: GRE objective %g far below APP %g", gre.NumTasks, gre.Objective, app.Objective)
		}
	}
}

func TestSweepTasksGREFasterAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale sweep")
	}
	// Since the class-collapsed LSAP (PR 2), the exact assignment step no
	// longer dominates HTA-APP: the cubic Hungarian dropped to
	// O(|T|²·|W|), leaving both algorithms bounded by the shared O(|T|²)
	// pipeline — the sweep now asserts the inversion of the old
	// LSAP-dominates invariant.
	rows, err := SweepTasks(Options{Scale: 0.12, Runs: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var appTotal, appLSAP float64
	for _, r := range rows {
		if r.NumTasks < 1000 {
			continue // only the largest points are informative
		}
		if r.Algorithm == "hta-app" {
			appTotal += r.TotalSeconds
			appLSAP += r.LSAPSeconds
		}
	}
	if appLSAP == 0 || appTotal == 0 {
		t.Fatal("sweep reported no APP timings at the largest sizes")
	}
	if appLSAP > appTotal/2 {
		t.Errorf("exact LSAP phase (%.3fs) still dominates HTA-APP total (%.3fs) — class collapse not routed?", appLSAP, appTotal)
	}
}

func TestSweepWorkersShape(t *testing.T) {
	rows, err := SweepWorkers(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("got %d rows, want 14", len(rows))
	}
	seen := map[int]bool{}
	for _, r := range rows {
		seen[r.NumWorkers] = true
	}
	if len(seen) != 7 {
		t.Fatalf("worker sweep has %d distinct sizes, want 7", len(seen))
	}
}

func TestSweepGroupsShape(t *testing.T) {
	rows, err := SweepGroups(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.NumGroups*max(1, r.NumTasks/r.NumGroups) > r.NumTasks+r.NumGroups {
			t.Fatalf("inconsistent group structure: %+v", r)
		}
	}
}

func TestSkipAPP(t *testing.T) {
	o := tinyOptions()
	o.SkipAPP = true
	rows, err := SweepTasks(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Algorithm == "hta-app" {
			t.Fatal("SkipAPP did not skip HTA-APP")
		}
	}
}

func TestRenderRows(t *testing.T) {
	rows, err := SweepTasks(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderRows(&buf, rows, "time"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "matching(s)") || !strings.Contains(out, "hta-gre") {
		t.Fatalf("time table missing columns:\n%s", out)
	}
	buf.Reset()
	if err := RenderRows(&buf, rows, "objective"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "objective") {
		t.Fatalf("objective table missing column:\n%s", buf.String())
	}
	if err := RenderRows(&buf, rows, "nope"); err == nil {
		t.Fatal("unknown table kind accepted")
	}
}

func TestSweepObjective(t *testing.T) {
	rows, err := SweepObjective(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes × 6 algorithms.
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	algos := map[string]int{}
	for _, r := range rows {
		algos[r.Algorithm]++
		if r.Objective < 0 {
			t.Fatalf("negative objective: %+v", r)
		}
	}
	for _, want := range []string{"hta-app", "hta-gre", "hta-gre+ls", "hta-auction", "greedy-motiv", "random"} {
		if algos[want] != 2 {
			t.Fatalf("algorithm %q appears %d times, want 2 (%v)", want, algos[want], algos)
		}
	}
	// The local-search-polished variant must dominate plain GRE on each size.
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Algorithm, r.NumTasks)] = r.Objective
	}
	for _, size := range []int{rows[0].NumTasks, rows[len(rows)-1].NumTasks} {
		ls := byKey[fmt.Sprintf("hta-gre+ls/%d", size)]
		gre := byKey[fmt.Sprintf("hta-gre/%d", size)]
		if ls < gre-1e-9 {
			t.Errorf("|T|=%d: gre+ls %g below gre %g", size, ls, gre)
		}
	}
	// SkipAPP drops only hta-app.
	o := tinyOptions()
	o.SkipAPP = true
	rows, err = SweepObjective(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Algorithm == "hta-app" {
			t.Fatal("SkipAPP kept hta-app")
		}
	}
}

func TestSweepIterationLatency(t *testing.T) {
	rows, err := SweepIterationLatency(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	for i, r := range rows {
		if r.IterationSeconds < 0 || r.BatchSeconds <= 0 {
			t.Fatalf("row %d: %+v", i, r)
		}
		if i > 0 && r.PoolSize < rows[i-1].PoolSize {
			t.Fatalf("pool sizes not increasing: %+v", rows)
		}
		// The Section V-A claim at small scale: iteration latency fits the
		// worker batch budget by a wide margin.
		if r.IterationSeconds > r.BatchSeconds/10 {
			t.Errorf("row %d: iteration %gs too close to batch budget %gs",
				i, r.IterationSeconds, r.BatchSeconds)
		}
	}
	var buf bytes.Buffer
	if err := RenderLatency(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fits-in-background") {
		t.Fatalf("latency table missing column:\n%s", buf.String())
	}
}

func TestFig5FilteredPipeline(t *testing.T) {
	params := crowd.DefaultParams()
	params.SessionMinutes = 8
	params.PoolPerSession = 200
	res, err := Fig5(Fig5Options{SessionsPerStrategy: 2, Seed: 9, Params: &params, Filtered: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Filters == nil {
		t.Fatal("filtered run returned no filter counts")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "selection pipeline") {
		t.Fatalf("render missing pipeline table:\n%s", buf.String())
	}
}

func TestFig5SmallRun(t *testing.T) {
	params := crowd.DefaultParams()
	params.SessionMinutes = 8
	params.PoolPerSession = 200
	res, err := Fig5(Fig5Options{SessionsPerStrategy: 2, Seed: 3, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grid) != 8 {
		t.Fatalf("grid = %v", res.Grid)
	}
	for _, s := range crowd.Strategies {
		if len(res.Study.Sessions[s]) != 2 {
			t.Fatalf("strategy %s has %d sessions, want 2", s, len(res.Study.Sessions[s]))
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"minute", "totals:", "significance", "hta-gre-div"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
