package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/solver"
	"github.com/htacs/ata/internal/trace"
	"github.com/htacs/ata/internal/workload"
)

// PR4Point is one tracing-overhead measurement: the same solver workload
// run against a disabled recorder (every solve pays exactly one atomic
// load at the root), a 1/16 head-sampled recorder (the recommended
// production setting), and an always-on recorder. Times are median ns/op
// over the sweep's runs on identical instances and seeds.
type PR4Point struct {
	Algorithm string `json:"algorithm"`
	NumTasks  int    `json:"tasks"`
	Workers   int    `json:"workers"`

	OffNs     int64 `json:"off_ns"`
	SampledNs int64 `json:"sampled_ns"` // 1/16 head sampling
	AlwaysNs  int64 `json:"always_ns"`  // every root sampled
	// Overheads are relative to OffNs; negative values are noise.
	SampledOverheadPct float64 `json:"sampled_overhead_pct"`
	AlwaysOverheadPct  float64 `json:"always_overhead_pct"`
}

// PR4Report is the payload of BENCH_PR4.json: the request-scoped tracing
// layer's cost on the hta-bench -fig pr2 solver workload, with the
// acceptance budget of 2% at 1/16 sampling.
type PR4Report struct {
	Note                  string     `json:"note"`
	Points                []PR4Point `json:"points"`
	MaxSampledOverheadPct float64    `json:"max_sampled_overhead_pct"`
	MaxAlwaysOverheadPct  float64    `json:"max_always_overhead_pct"`
	BudgetPct             float64    `json:"budget_pct"`
	WithinBudget          bool       `json:"within_budget"`
}

// SweepPR4 measures tracing overhead on the PR 2 solver workload points
// (hta-app and hta-gre at |T| ∈ {400, 700, 1000}, |W| = 20). Each point
// is solved o.Runs times per recorder mode — off, 1/16 head-sampled,
// always-on — interleaved so drift hits every side equally. It also
// returns one fully-recorded trace from the sweep, suitable for
// trace.WriteChrome (the BENCH artifact a reviewer loads in Perfetto).
func SweepPR4(o Options) (*PR4Report, []*trace.Trace, error) {
	o.applyDefaults()
	report := &PR4Report{
		Note: "tracing overhead on the -fig pr2 solver workload: off = disabled recorder (one atomic load per solve), sampled = 1/16 head sampling, always = every solve traced. Identical instances and seeds, WithoutFlip.",
		// Same acceptance budget as the obs layer (BENCH_PR3.json): the
		// production setting must stay under 2%.
		BudgetPct: 2.0,
	}
	var sample []*trace.Trace
	for _, numTasks := range []int{400, 700, 1000} {
		const numGroups, numWorkers = 20, 20
		for _, algo := range []string{"hta-app", "hta-gre"} {
			point, traces, err := measurePR4(o, algo, numTasks, numGroups, numWorkers)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: pr4 %s |T|=%d: %w", algo, numTasks, err)
			}
			report.Points = append(report.Points, point)
			if point.SampledOverheadPct > report.MaxSampledOverheadPct {
				report.MaxSampledOverheadPct = point.SampledOverheadPct
			}
			if point.AlwaysOverheadPct > report.MaxAlwaysOverheadPct {
				report.MaxAlwaysOverheadPct = point.AlwaysOverheadPct
			}
			if len(traces) > 0 {
				sample = traces
			}
		}
	}
	report.WithinBudget = report.MaxSampledOverheadPct < report.BudgetPct
	return report, sample, nil
}

// pr4Modes are the recorder configurations under comparison.
var pr4Modes = []struct {
	name  string
	every int
}{
	{"off", 0},
	{"sampled", 16},
	{"always", 1},
}

// measurePR4 times one algorithm under the three recorder modes. Each
// mode keeps one recorder for the whole point (so 1/16 sampling actually
// skips 15 of 16 roots), and the mode order rotates per run so thermal
// and cache drift does not bias one side.
func measurePR4(o Options, algo string, numTasks, numGroups, numWorkers int) (PR4Point, []*trace.Trace, error) {
	point := PR4Point{Algorithm: algo, NumTasks: numTasks, Workers: numWorkers}
	solve := solver.HTAGRE
	if algo == "hta-app" {
		solve = solver.HTAAPP
	}
	perGroup := numTasks / numGroups
	if perGroup < 1 {
		perGroup = 1
	}
	recorders := make(map[string]*trace.Recorder, len(pr4Modes))
	for _, m := range pr4Modes {
		recorders[m.name] = trace.NewRecorder(32, m.every)
	}
	samples := make(map[string][]time.Duration, len(pr4Modes))
	for run := 0; run < o.Runs; run++ {
		gen, err := workload.NewGenerator(workload.Config{Seed: o.Seed + int64(run)})
		if err != nil {
			return point, nil, err
		}
		tasks := gen.Tasks(numGroups, perGroup)
		workers := gen.Workers(numWorkers)
		seed := o.Seed + int64(run)

		measureOne := func(rec *trace.Recorder) (time.Duration, error) {
			in, err := core.NewInstance(tasks, workers, o.Xmax, metric.Jaccard{})
			if err != nil {
				return 0, err
			}
			start := time.Now()
			ctx, root := rec.Start(context.Background(), "bench.solve",
				trace.Str("algorithm", algo), trace.Int("tasks", numTasks))
			_, err = solve(in, solver.WithContext(ctx), solver.WithoutFlip(),
				solver.WithRand(rand.New(rand.NewSource(seed))))
			root.End()
			return time.Since(start), err
		}

		if run == 0 {
			// Warm-up: one-time costs (allocator growth, branch training)
			// must not land on any side of the comparison.
			if _, err := measureOne(recorders["off"]); err != nil {
				return point, nil, err
			}
		}
		for i := range pr4Modes {
			m := pr4Modes[(i+run)%len(pr4Modes)]
			d, err := measureOne(recorders[m.name])
			if err != nil {
				return point, nil, err
			}
			samples[m.name] = append(samples[m.name], d)
		}
	}
	point.OffNs = medianNs(samples["off"])
	point.SampledNs = medianNs(samples["sampled"])
	point.AlwaysNs = medianNs(samples["always"])
	if point.OffNs > 0 {
		point.SampledOverheadPct = 100 * float64(point.SampledNs-point.OffNs) / float64(point.OffNs)
		point.AlwaysOverheadPct = 100 * float64(point.AlwaysNs-point.OffNs) / float64(point.OffNs)
	}
	return point, recorders["always"].Snapshot(1), nil
}

// RenderPR4 prints the report as an aligned table.
func (r *PR4Report) RenderPR4(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-10s %7s %7s %12s %12s %12s %10s %10s\n",
		"algorithm", "|T|", "|W|", "off (ms)", "1/16 (ms)", "1/1 (ms)", "ovh 1/16", "ovh 1/1"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%-10s %7d %7d %12.3f %12.3f %12.3f %9.2f%% %9.2f%%\n",
			p.Algorithm, p.NumTasks, p.Workers,
			float64(p.OffNs)/1e6, float64(p.SampledNs)/1e6, float64(p.AlwaysNs)/1e6,
			p.SampledOverheadPct, p.AlwaysOverheadPct); err != nil {
			return err
		}
	}
	verdict := "within"
	if !r.WithinBudget {
		verdict = "OVER"
	}
	_, err := fmt.Fprintf(w, "\nmax 1/16-sampling overhead %.2f%% — %s the %.0f%% budget (1/1: %.2f%%)\n",
		r.MaxSampledOverheadPct, verdict, r.BudgetPct, r.MaxAlwaysOverheadPct)
	return err
}

// WritePR4JSON writes the BENCH_PR4.json payload.
func (r *PR4Report) WritePR4JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
