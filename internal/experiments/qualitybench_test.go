package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSweepPR8MeetsTarget is the acceptance criterion run as a test: at
// k=3 under the 40% spammy crowd, both trust-aware aggregators must beat
// plain majority, and the report must survive a JSON round trip with its
// elapsed_ns leaves intact (the CI compare gate keys on them).
func TestSweepPR8MeetsTarget(t *testing.T) {
	report, err := SweepPR8(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 3 {
		t.Fatalf("points: %d, want 3 (k = 1, 3, 5)", len(report.Points))
	}
	if !report.MeetsTarget {
		t.Fatalf("target missed: %+v", report.Points)
	}
	var k3 PR8Point
	for _, p := range report.Points {
		if p.EvalTasks == 0 || p.ElapsedNs <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		for _, acc := range []float64{p.MajorityAcc, p.WeightedAcc, p.EMAcc} {
			if acc <= 0 || acc > 1 {
				t.Fatalf("accuracy %v out of range: %+v", acc, p)
			}
		}
		if p.K == 3 {
			k3 = p
		}
	}
	if k3.WeightedAcc <= k3.MajorityAcc || k3.EMAcc <= k3.MajorityAcc {
		t.Fatalf("k=3 contrast inverted: %+v", k3)
	}
	if k3.Quarantined == 0 {
		t.Fatal("no spammer quarantined at k=3 — the gold loop never fired")
	}

	var buf bytes.Buffer
	if err := report.WritePR8JSON(&buf); err != nil {
		t.Fatal(err)
	}
	nums, err := FlattenNumbers(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	nsLeaves := 0
	for k := range nums {
		if strings.HasSuffix(k, "_ns") {
			nsLeaves++
		}
	}
	if nsLeaves != 3 {
		t.Fatalf("JSON carries %d *_ns leaves, want 3 (one per k)", nsLeaves)
	}
	var back PR8Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !back.MeetsTarget || len(back.Points) != 3 {
		t.Fatalf("round-tripped report diverged: %+v", back)
	}
	if err := report.RenderPR8(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestSweepPR8Deterministic: the same seed reproduces the same accuracy
// figures — only the elapsed_ns timing may move.
func TestSweepPR8Deterministic(t *testing.T) {
	a, err := SweepPR8(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepPR8(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		pa, pb := a.Points[i], b.Points[i]
		pa.ElapsedNs, pb.ElapsedNs = 0, 0
		if pa != pb {
			t.Fatalf("point %d diverged across identical seeds: %+v vs %+v", i, pa, pb)
		}
	}
}
