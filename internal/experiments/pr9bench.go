package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"

	"github.com/htacs/ata/internal/cluster"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/trace"
)

// PR9Point is the observability-overhead measurement for the cluster
// plane: the pr7 churn workload on a 3-node loopback cluster run with the
// full PR 9 observability stack live (metrics registries recording,
// gateway head-sampling 1 in 16 requests with remote spans joining on
// every node, ops journals enabled) and with all of it off
// (obs.SetEnabled(false), ops.SetEnabled(false), sampling 0 so no
// SpanContext ever reaches a node). Times are best-of-runs per-event ns
// over interleaved runs on identical seeds.
type PR9Point struct {
	Nodes       int `json:"nodes"`
	SampleEvery int `json:"sample_every"` // gateway head-sampling: 1 in N
	Events      int `json:"events"`

	EnabledNs  int64 `json:"enabled_ns"`  // per-event, observability on
	DisabledNs int64 `json:"disabled_ns"` // per-event, observability off
	// OverheadPct = 100·(EnabledNs − DisabledNs)/DisabledNs. Negative
	// values are measurement noise: the enabled side adds a few atomic
	// counter writes per op, one span allocation per sampled request, and
	// nothing at all on the journal path (no failovers or steals occur
	// during the bench).
	OverheadPct float64 `json:"overhead_pct"`
}

// PR9Report is the payload of BENCH_PR9.json: the cluster observability
// layer's cost on the pr7 gateway workload, against the 2% budget from
// the PR issue.
type PR9Report struct {
	Note           string     `json:"note"`
	Points         []PR9Point `json:"points"`
	MaxOverheadPct float64    `json:"max_overhead_pct"`
	BudgetPct      float64    `json:"budget_pct"`
	WithinBudget   bool       `json:"within_budget"`
}

// pr9SampleEvery is the shipped head-sampling rate the budget is defined
// against: 1 in 16 gateway requests opens a root span, and only those
// carry a SpanContext into the cluster frames.
const pr9SampleEvery = 16

// SweepPR9 measures the end-to-end cost of the PR 9 observability stack
// on the pr7 cluster workload at 3 nodes: enabled and disabled runs
// alternate on identical seeds so drift hits both sides equally, and the
// verdict is the median contrast against the 2% budget.
func SweepPR9(o Options) (*PR9Report, error) {
	o.applyDefaults()
	defer obs.SetEnabled(true)
	defer ops.SetEnabled(true)
	report := &PR9Report{
		Note:      "cluster observability overhead on the -fig pr7 gateway workload at 3 nodes: enabled = federated metrics + 1/16 head sampling with remote spans + ops journals (the shipped defaults), disabled = obs.SetEnabled(false) + ops.SetEnabled(false) + sampling 0. Identical seeds, interleaved runs, best-of-runs per-event ns on each side.",
		BudgetPct: 2.0,
	}
	point, err := measurePR9(o, 3, defaultPR7Shape)
	if err != nil {
		return nil, fmt.Errorf("experiments: pr9 nodes=3: %w", err)
	}
	report.Points = append(report.Points, point)
	report.MaxOverheadPct = point.OverheadPct
	report.WithinBudget = report.MaxOverheadPct < report.BudgetPct
	return report, nil
}

// measurePR9 times the pr7 driver loop with observability on and off,
// o.Runs times each, alternating which side goes first per run so thermal
// and scheduler drift cancels (the pr3 protocol, applied to the cluster).
// Each side reports its fastest run, not the median: the workload is
// loopback-HTTP-bound with run-to-run contention noise several times the
// 2% budget, and that noise is strictly one-sided — a co-scheduled
// process can only ever add time — so min-of-interleaved-runs converges
// to the true per-event cost on both sides where a median would gate on
// whichever side drew the quieter scheduler slots.
func measurePR9(o Options, nodes int, shape pr7Shape) (PR9Point, error) {
	point := PR9Point{Nodes: nodes, SampleEvery: pr9SampleEvery, Events: shape.totalEvents()}
	var onRuns, offRuns []time.Duration

	measureOne := func(seed int64, instrumented bool) (time.Duration, error) {
		obs.SetEnabled(instrumented)
		ops.SetEnabled(instrumented)
		defer obs.SetEnabled(true)
		defer ops.SetEnabled(true)
		c, err := startPR9Cluster(nodes, shape, instrumented)
		if err != nil {
			return 0, err
		}
		defer c.stop()
		res, err := drivePR7(c, seed, shape)
		if err != nil {
			return 0, err
		}
		if !res.conserved {
			return 0, fmt.Errorf("conservation violated (instrumented=%v)", instrumented)
		}
		return res.elapsed, nil
	}

	for run := 0; run < o.Runs; run++ {
		seed := o.Seed + int64(run)
		if run == 0 {
			// Warm-up: the first cluster of the process pays one-time costs
			// (connection pool growth, branch training) that must not land
			// on either side of the comparison.
			if _, err := measureOne(seed, true); err != nil {
				return point, err
			}
		}
		order := []bool{true, false}
		if run%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, instrumented := range order {
			d, err := measureOne(seed, instrumented)
			if err != nil {
				return point, err
			}
			if instrumented {
				onRuns = append(onRuns, d)
			} else {
				offRuns = append(offRuns, d)
			}
		}
	}
	point.EnabledNs = minNs(onRuns) / int64(shape.totalEvents())
	point.DisabledNs = minNs(offRuns) / int64(shape.totalEvents())
	if point.DisabledNs > 0 {
		point.OverheadPct = 100 * float64(point.EnabledNs-point.DisabledNs) / float64(point.DisabledNs)
	}
	return point, nil
}

// startPR9Cluster builds the same loopback cluster as the pr7 bench but
// with the PR 9 observability stack wired end to end when instrumented:
// per-node registries, recorders and journals, a sampling gateway
// recorder, and journal-carrying engines. The uninstrumented side keeps
// the identical topology with sampling 0 and isolated (but disabled)
// registries, so the contrast isolates the observability writes.
func startPR9Cluster(nodes int, shape pr7Shape, instrumented bool) (*pr7Cluster, error) {
	c := &pr7Cluster{}
	gwSample := 0
	if instrumented {
		gwSample = pr9SampleEvery
	}
	var peers []cluster.PeerSpec
	for i := 0; i < nodes; i++ {
		eng, err := shard.New(shard.Config{
			Shards:        1,
			StealInterval: -1, // cluster nodes must not steal: stolen tasks escape the gateway ledger
			Registry:      obs.NewRegistry(),
			Journal:       ops.NewJournal(256),
			Stream: stream.Config{
				Xmax:        shape.xmax,
				BufferLimit: shape.totalBuffer / nodes,
			},
		})
		if err != nil {
			c.stop()
			return nil, err
		}
		c.engines = append(c.engines, eng)
		name := fmt.Sprintf("n%d", i)
		node, err := cluster.NewNode(cluster.NodeConfig{
			Name:   name,
			Engine: eng,
			// Remote spans bypass the node sampler — the gateway's head
			// decision travels by SpanContext presence — so capacity is the
			// only knob that matters here.
			Tracer:   trace.NewRecorder(256, 0),
			Registry: obs.NewRegistry(),
			Journal:  ops.NewJournal(256),
		})
		if err != nil {
			c.stop()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.stop()
			return nil, err
		}
		srv := &http.Server{Handler: node}
		go srv.Serve(ln)
		c.lns = append(c.lns, ln)
		c.servers = append(c.servers, srv)
		peers = append(peers, cluster.PeerSpec{Name: name, URL: "http://" + ln.Addr().String()})
	}
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Peers:             peers,
		HeartbeatInterval: -1, // no failures in the bench; probing would only add noise
		Registry:          obs.NewRegistry(),
		Tracer:            trace.NewRecorder(256, gwSample),
		Journal:           ops.NewJournal(256),
		Logger:            slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		c.stop()
		return nil, err
	}
	c.gw = gw
	return c, nil
}

// minNs returns the fastest sample in nanoseconds.
func minNs(ds []time.Duration) int64 {
	if len(ds) == 0 {
		return 0
	}
	best := ds[0]
	for _, d := range ds[1:] {
		if d < best {
			best = d
		}
	}
	return best.Nanoseconds()
}

// RenderPR9 prints the report as an aligned table.
func (r *PR9Report) RenderPR9(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%6s %9s %14s %14s %10s\n",
		"nodes", "sampling", "obs on", "obs off", "overhead"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%6d %8s %12dns %12dns %9.2f%%\n",
			p.Nodes, fmt.Sprintf("1/%d", p.SampleEvery),
			p.EnabledNs, p.DisabledNs, p.OverheadPct); err != nil {
			return err
		}
	}
	verdict := "within"
	if !r.WithinBudget {
		verdict = "OVER"
	}
	_, err := fmt.Fprintf(w, "\nmax overhead %.2f%% — %s the %.0f%% budget (per-event ns, tracing 1/%d + journal + federated metrics vs all off)\n",
		r.MaxOverheadPct, verdict, r.BudgetPct, pr9SampleEvery)
	return err
}

// WritePR9JSON writes the BENCH_PR9.json payload.
func (r *PR9Report) WritePR9JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
