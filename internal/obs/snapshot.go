package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Federated metrics: a Snapshot is the full-fidelity serializable form of
// a registry — counter/gauge values and raw histogram buckets, not the
// lossy quantile summaries of WriteJSON. One node serves its snapshot at
// /metrics?format=snapshot; the gateway pulls every member's snapshot,
// merges them (counters sum, gauges carry node labels, histograms merge
// bucket-wise), and renders the cluster-wide /metrics with per-node
// labels plus rollups.

// SeriesSnapshot is one series in serializable form: exactly one of Value
// (counter/gauge) or Hist (histogram) is set.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Hist   *HistSnapshot     `json:"hist,omitempty"`
}

// FamilySnapshot is one metric family in serializable form.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Type   MetricType       `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time serializable copy of a whole registry.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// histSnapshotJSON is the wire shape of HistSnapshot. Min/Max are omitted
// when the histogram is empty — their ±Inf sentinels are not encodable as
// JSON numbers.
type histSnapshotJSON struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    *float64  `json:"min,omitempty"`
	Max    *float64  `json:"max,omitempty"`
}

// MarshalJSON encodes the snapshot, eliding the ±Inf Min/Max sentinels of
// an empty histogram (JSON has no Inf literal).
func (s HistSnapshot) MarshalJSON() ([]byte, error) {
	j := histSnapshotJSON{Bounds: s.Bounds, Counts: s.Counts, Count: s.Count, Sum: s.Sum}
	if !math.IsInf(s.Min, 0) {
		mn := s.Min
		j.Min = &mn
	}
	if !math.IsInf(s.Max, 0) {
		mx := s.Max
		j.Max = &mx
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the wire form, restoring the ±Inf sentinels when
// Min/Max were elided.
func (s *HistSnapshot) UnmarshalJSON(b []byte) error {
	var j histSnapshotJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	s.Bounds, s.Counts, s.Count, s.Sum = j.Bounds, j.Counts, j.Count, j.Sum
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	if j.Min != nil {
		s.Min = *j.Min
	}
	if j.Max != nil {
		s.Max = *j.Max
	}
	return nil
}

// Snapshot copies the registry into serializable form: families in
// registration order, series sorted by canonical label key.
func (r *Registry) Snapshot() Snapshot {
	fams := r.snapshotFamilies()
	out := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.typ, Help: f.help, Series: []SeriesSnapshot{}}
		for _, s := range f.series {
			ss := SeriesSnapshot{Labels: labelMap(s.labels)}
			switch m := s.metric.(type) {
			case *Counter:
				v := m.Value()
				ss.Value = &v
			case *Gauge:
				v := m.Value()
				ss.Value = &v
			case *Histogram:
				snap := m.Snapshot()
				ss.Hist = &snap
			}
			fs.Series = append(fs.Series, ss)
		}
		out.Families = append(out.Families, fs)
	}
	return out
}

// WriteJSON serializes the snapshot (the body of /metrics?format=snapshot).
func (s Snapshot) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(s)
}

// ReadSnapshot parses a serialized snapshot.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	return s, nil
}

// MergeHist merges two histogram snapshots bucket-wise: counts add
// element-wise, Count and Sum add, Min/Max take the extremes. The merge is
// exact for count and sum (the invariants the property test pins down) and
// loses no bucket resolution, so quantiles estimated from the merge stay
// within the bounds of the bucket holding the merged rank. Bounds must be
// identical (all registries build them from the same generators); an empty
// side (no bounds, no observations) merges to the other side unchanged.
func MergeHist(a, b HistSnapshot) (HistSnapshot, error) {
	if len(a.Bounds) == 0 && a.Count == 0 {
		return cloneHist(b), nil
	}
	if len(b.Bounds) == 0 && b.Count == 0 {
		return cloneHist(a), nil
	}
	if len(a.Bounds) != len(b.Bounds) {
		return HistSnapshot{}, fmt.Errorf("obs: merge histogram: %d vs %d bounds", len(a.Bounds), len(b.Bounds))
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return HistSnapshot{}, fmt.Errorf("obs: merge histogram: bound %d differs (%g vs %g)", i, a.Bounds[i], b.Bounds[i])
		}
	}
	m := cloneHist(a)
	if len(b.Counts) != len(m.Counts) {
		return HistSnapshot{}, fmt.Errorf("obs: merge histogram: %d vs %d buckets", len(m.Counts), len(b.Counts))
	}
	for i, c := range b.Counts {
		m.Counts[i] += c
	}
	m.Count += b.Count
	m.Sum += b.Sum
	m.Min = math.Min(m.Min, b.Min)
	m.Max = math.Max(m.Max, b.Max)
	return m, nil
}

func cloneHist(s HistSnapshot) HistSnapshot {
	cp := s
	cp.Bounds = append([]float64(nil), s.Bounds...)
	cp.Counts = append([]uint64(nil), s.Counts...)
	return cp
}

// NodeLabel is the label key the federation layer stamps onto every
// per-node series in a merged snapshot.
const NodeLabel = "node"

// MergeSnapshots federates per-node registry snapshots into one
// cluster-wide snapshot, keyed by node name:
//
//   - counters: one series per node with a node="name" label, plus a
//     rollup series (original labels only) summing across nodes;
//   - gauges: per-node labeled series only (a sum of instantaneous values
//     is rarely meaningful);
//   - histograms: per-node labeled series plus a bucket-wise merged
//     rollup (skipped if bucket bounds ever disagree).
//
// A series that already carries a node label keeps it (the federation
// never overwrites identity). Families are sorted by name and series by
// canonical label key, so the merged output is deterministic regardless
// of per-node registration order.
func MergeSnapshots(nodes map[string]Snapshot) Snapshot {
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	type mergedFam struct {
		fam     FamilySnapshot
		rollup  map[string]*SeriesSnapshot // canonical label key → rollup series
		rollKey []string                   // insertion order of rollup keys
		rollOK  bool                       // histogram rollup still mergeable
	}
	byName := make(map[string]*mergedFam)
	var order []string

	for _, node := range names {
		for _, f := range nodes[node].Families {
			mf, ok := byName[f.Name]
			if !ok {
				mf = &mergedFam{
					fam:    FamilySnapshot{Name: f.Name, Type: f.Type, Help: f.Help, Series: []SeriesSnapshot{}},
					rollup: make(map[string]*SeriesSnapshot),
					rollOK: true,
				}
				byName[f.Name] = mf
				order = append(order, f.Name)
			}
			for _, s := range f.Series {
				key := mapLabelKey(s.Labels)
				// Per-node series: original labels + node label.
				ns := SeriesSnapshot{Labels: withNodeLabel(s.Labels, node)}
				if s.Value != nil {
					v := *s.Value
					ns.Value = &v
				}
				if s.Hist != nil {
					h := cloneHist(*s.Hist)
					ns.Hist = &h
				}
				mf.fam.Series = append(mf.fam.Series, ns)

				// Rollups: counters sum, histograms merge bucket-wise.
				switch f.Type {
				case TypeCounter:
					ru, ok := mf.rollup[key]
					if !ok {
						ru = &SeriesSnapshot{Labels: copyLabels(s.Labels), Value: new(float64)}
						mf.rollup[key] = ru
						mf.rollKey = append(mf.rollKey, key)
					}
					if s.Value != nil && ru.Value != nil {
						*ru.Value += *s.Value
					}
				case TypeHistogram:
					if !mf.rollOK || s.Hist == nil {
						break
					}
					ru, ok := mf.rollup[key]
					if !ok {
						h := cloneHist(*s.Hist)
						mf.rollup[key] = &SeriesSnapshot{Labels: copyLabels(s.Labels), Hist: &h}
						mf.rollKey = append(mf.rollKey, key)
						break
					}
					merged, err := MergeHist(*ru.Hist, *s.Hist)
					if err != nil {
						mf.rollOK = false // incompatible bounds: drop the rollup, keep per-node series
						break
					}
					ru.Hist = &merged
				}
			}
		}
	}

	sort.Strings(order)
	out := Snapshot{Families: make([]FamilySnapshot, 0, len(order))}
	for _, name := range order {
		mf := byName[name]
		fam := FamilySnapshot{Name: mf.fam.Name, Type: mf.fam.Type, Help: mf.fam.Help, Series: []SeriesSnapshot{}}
		if mf.fam.Type != TypeGauge && mf.rollOK {
			sort.Strings(mf.rollKey)
			for _, k := range mf.rollKey {
				fam.Series = append(fam.Series, *mf.rollup[k])
			}
		}
		perNode := mf.fam.Series
		sort.SliceStable(perNode, func(i, j int) bool {
			return mapLabelKey(perNode[i].Labels) < mapLabelKey(perNode[j].Labels)
		})
		fam.Series = append(fam.Series, perNode...)
		out.Families = append(out.Families, fam)
	}
	return out
}

// withNodeLabel copies labels and adds node=name unless a node label is
// already present.
func withNodeLabel(labels map[string]string, node string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	if _, ok := out[NodeLabel]; !ok {
		out[NodeLabel] = node
	}
	return out
}

func copyLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// mapLabelKey is labelKey over the map form.
func mapLabelKey(labels map[string]string) string {
	return labelKey(labelsFromMap(labels))
}

// labelsFromMap converts the JSON map form back to a sorted label set.
func labelsFromMap(labels map[string]string) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, 0, len(labels))
	for k, v := range labels {
		out = append(out, Label{Key: k, Value: v})
	}
	return sortLabels(out)
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format — the same output shape as Registry.WritePrometheus, but driven
// from serialized (possibly merged) data. The gateway uses it to serve
// the federated /metrics.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, f := range s.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, ser := range f.Series {
			labels := labelsFromMap(ser.Labels)
			switch {
			case ser.Hist != nil:
				if err := writePromHistogram(w, f.Name, labels, *ser.Hist); err != nil {
					return err
				}
			case ser.Value != nil:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, renderLabels(labels), fmtFloat(*ser.Value)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
