package obs

import "time"

// Span times one phase of work and records the elapsed seconds into a
// latency histogram on End. The zero Span (and a Span over a nil
// histogram) is inert, so call sites can be written unconditionally:
//
//	sp := obs.StartSpan(phaseHist)
//	...work...
//	sp.End()
//
// Span is a value type — no allocation, safe to pass around, but End
// records only once per StartSpan.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing against h (nil h → inert span).
func StartSpan(h *Histogram) Span {
	if h == nil || !enabled.Load() {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time (in seconds) into the span's histogram and
// returns it. Inert spans return 0.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

// ObserveDuration records an externally measured duration (in seconds)
// into h — for call sites that already hold a time.Duration, like the
// solver's phase timings that also feed Result fields.
func ObserveDuration(h *Histogram, d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}
