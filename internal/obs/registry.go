package obs

import (
	"fmt"
	"sort"
	"sync"
)

// MetricType tags a family in the exposition output.
type MetricType string

// The three metric types the layer supports.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// series is one labeled instance inside a family.
type series struct {
	key    string  // canonical identity fragment from labelKey
	labels []Label // sorted label set, escaped at render time
	metric any     // *Counter, *Gauge or *Histogram
}

// family groups all label variants of one metric name.
type family struct {
	name   string
	help   string
	typ    MetricType
	bounds []float64 // histogram families only
	series []series  // insertion order
	byKey  map[string]int
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry (or use Default). Getter methods are idempotent
// and safe for concurrent use; the write path of the returned metrics
// never touches the registry again.
type Registry struct {
	mu       sync.RWMutex
	families []*family // insertion order
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry that package-level
// instrumentation (solver phases, engine iterations, …) registers into and
// that hta-server exposes on /metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter for name+labels, creating (and registering)
// it on first use. Panics if name is invalid or already registered with a
// different type — both are programming errors caught by any test that
// touches the package.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.metric(name, help, TypeCounter, nil, labels)
	return m.(*Counter)
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.metric(name, help, TypeGauge, nil, labels)
	return m.(*Gauge)
}

// Histogram returns the histogram for name+labels, creating it on first
// use with the given bucket upper bounds (nil → DurationBuckets). Bounds
// are fixed at family creation; later calls for the same name reuse them.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets()
	}
	m := r.metric(name, help, TypeHistogram, bounds, labels)
	return m.(*Histogram)
}

// metric is the shared idempotent lookup-or-create.
func (r *Registry) metric(name, help string, typ MetricType, bounds []float64, labels []Label) any {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on %q", l.Key, name))
		}
	}
	key := labelKey(labels)

	r.mu.RLock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			r.mu.RUnlock()
			panic(fmt.Sprintf("obs: %q registered as %s, requested as %s", name, f.typ, typ))
		}
		if i, ok := f.byKey[key]; ok {
			m := f.series[i].metric
			r.mu.RUnlock()
			return m
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, bounds: bounds, byKey: make(map[string]int)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: %q registered as %s, requested as %s", name, f.typ, typ))
	}
	if i, ok := f.byKey[key]; ok {
		return f.series[i].metric
	}
	var m any
	switch typ {
	case TypeCounter:
		m = &Counter{}
	case TypeGauge:
		m = &Gauge{}
	case TypeHistogram:
		m = newHistogram(f.bounds)
	}
	f.byKey[key] = len(f.series)
	f.series = append(f.series, series{key: key, labels: sortLabels(labels), metric: m})
	return m
}

// snapshotFamilies copies the family/series structure under the read lock
// so rendering can proceed without holding it.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, len(r.families))
	for i, f := range r.families {
		cp := &family{name: f.name, help: f.help, typ: f.typ, bounds: f.bounds}
		cp.series = append(cp.series, f.series...)
		sort.Slice(cp.series, func(a, b int) bool { return cp.series[a].key < cp.series[b].key })
		out[i] = cp
	}
	return out
}
