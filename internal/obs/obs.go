// Package obs is the repository's zero-dependency observability layer:
// atomic counters and gauges, lock-cheap streaming histograms with
// quantile snapshots, and a span API for phase timing, all collected in a
// Registry that renders Prometheus-style text and JSON.
//
// Design constraints, in order:
//
//  1. Stdlib only. The serving path must not grow a dependency tree for
//     telemetry; the exposition format is the Prometheus text format,
//     which any scraper speaks, produced by ~100 lines of formatting.
//  2. Hot-path writes are a handful of atomic operations — no locks, no
//     allocation. Counter.Add and Gauge.Set are one CAS loop each;
//     Histogram.Observe is a bucket search over a small sorted slice plus
//     four atomics. The solver records phase timings on every run, the
//     streaming assigner on every event; the budget is < 2% of the
//     hta-bench -fig pr2 workload (measured by -fig pr3, BENCH_PR3.json).
//  3. Reads (snapshots, renders) may take locks and allocate — scrapes
//     are rare next to writes.
//
// Metrics are identified by a Prometheus-style name plus an optional,
// fixed-at-registration label set. Registry getters are idempotent:
// asking twice for the same name+labels returns the same metric, so
// packages can resolve their instruments in var blocks against Default()
// without init-order choreography, and dynamic families (per-endpoint,
// per-algorithm) are a lookup away.
//
// The package-wide Enabled switch turns every write into an early return
// (one atomic load) so benchmarks can measure the instrumentation itself.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// enabled gates every metric write. Default on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns all metric writes on or off globally. Disabling reduces
// every Add/Set/Observe to a single atomic load — the knob the obs-overhead
// benchmark (hta-bench -fig pr3) flips to measure instrumentation cost.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric writes are currently recorded.
func Enabled() bool { return enabled.Load() }

// Label is one constant key=value pair attached to a metric at
// registration time.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for Label{Key: k, Value: v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing float64. The zero value is ready
// to use (but unregistered — normally obtained from a Registry).
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter. Negative deltas are ignored — counters only
// go up; use a Gauge for values that can fall.
func (c *Counter) Add(v float64) {
	if v < 0 || !enabled.Load() {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by v (negative deltas allowed).
func (g *Gauge) Add(v float64) {
	if !enabled.Load() {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// validName reports whether name matches the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortLabels returns a key-sorted copy of labels (nil for an empty set) —
// the canonical order used for both series identity and rendering.
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// labelKey serializes a label set into a canonical (sorted) map key:
// `{k1="v1",k2="v2"}`, or "" for no labels. This is an identity string
// (Go %q quoting), not exposition output — rendering escapes per the
// Prometheus rules instead.
func labelKey(labels []Label) string {
	ls := sortLabels(labels)
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}
