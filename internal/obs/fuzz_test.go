package obs

import (
	"math"
	"testing"
)

// FuzzHistogramQuantiles drives Histogram.Observe and the quantile
// estimator with arbitrary inputs and checks the structural invariants:
// no panics, Count/Sum bookkeeping exact, every quantile inside the
// observed [Min, Max], and quantiles monotone in q.
func FuzzHistogramQuantiles(f *testing.F) {
	f.Add(0.001, 0.5, 12.0, 0.5, uint8(8))
	f.Add(-3.0, 0.0, 1e9, 0.25, uint8(3))
	f.Add(1e-12, 1e12, -1e12, 0.99, uint8(64))
	f.Fuzz(func(t *testing.T, a, b, c, q float64, n uint8) {
		h := newHistogram(DurationBuckets())
		values := []float64{a, b, c}
		// Replay a deterministic mix of the three seeds to fill buckets
		// unevenly; NaN observations must be dropped, everything else
		// (negative, zero, ±Inf) must be bucketed without panic.
		var want uint64
		var wantSum float64
		for i := 0; i < int(n); i++ {
			v := values[i%3] * float64(1+i/3)
			h.Observe(v)
			if !math.IsNaN(v) {
				want++
				wantSum += v
			}
		}
		s := h.Snapshot()
		if s.Count != want {
			t.Fatalf("count = %d, want %d", s.Count, want)
		}
		var bucketTotal uint64
		for _, c := range s.Counts {
			bucketTotal += c
		}
		if bucketTotal != want {
			t.Fatalf("bucket total = %d, want %d", bucketTotal, want)
		}
		if want > 0 && !math.IsInf(wantSum, 0) && math.Abs(s.Sum-wantSum) > 1e-6*math.Max(1, math.Abs(wantSum)) {
			t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
		}

		if s.Count == 0 {
			if !math.IsNaN(s.Quantile(0.5)) {
				t.Fatal("empty histogram must return NaN quantiles")
			}
			return
		}
		// Bounds respected: every valid quantile lies in [Min, Max].
		probe := math.Abs(q)
		probe -= math.Floor(probe) // fold into [0,1)
		if math.IsNaN(probe) {
			probe = 0.5
		}
		for _, qq := range []float64{0, probe, 0.5, 1} {
			v := s.Quantile(qq)
			if math.IsNaN(v) {
				t.Fatalf("Quantile(%v) = NaN on non-empty histogram", qq)
			}
			if v < s.Min || v > s.Max {
				t.Fatalf("Quantile(%v) = %v outside [%v, %v]", qq, v, s.Min, s.Max)
			}
		}
		// Monotone in q.
		prev := math.Inf(-1)
		for qq := 0.0; qq <= 1.0; qq += 1.0 / 64 {
			v := s.Quantile(qq)
			if v < prev {
				t.Fatalf("quantiles not monotone at q=%v: %v < %v", qq, v, prev)
			}
			prev = v
		}
	})
}
