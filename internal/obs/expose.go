package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// escapeHelp escapes a HELP comment per the Prometheus text format:
// backslash and newline are escaped (a raw newline would split the
// comment into a garbage line the scraper rejects).
func escapeHelp(s string) string {
	return helpEscaper.Replace(s)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double-quote and newline.
func escapeLabelValue(s string) string {
	return labelEscaper.Replace(s)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels renders a sorted label set (plus optional extras, appended
// after) as an exposition fragment: `{k="v",...}`, or "" when empty.
func renderLabels(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	for _, set := range [2][]Label{labels, extra} {
		for _, l := range set {
			if n > 0 {
				b.WriteByte(',')
			}
			n++
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families in registration order,
// series sorted by label set within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch m := s.metric.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), fmtFloat(m.Value()))
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), fmtFloat(m.Value()))
			case *Histogram:
				err = writePromHistogram(w, f.name, s.labels, m.Snapshot())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram renders one histogram series: cumulative _bucket
// lines, then _sum and _count.
func writePromHistogram(w io.Writer, name string, labels []Label, s HistSnapshot) error {
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = fmtFloat(s.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels, L("le", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(labels), fmtFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), cum)
	return err
}

// fmtFloat renders floats the way Prometheus expects (shortest exact
// representation, Inf/NaN spelled out).
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// JSONSeries is one series in the JSON exposition.
type JSONSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Histogram summary fields (quantiles interpolated from buckets).
	Count *uint64  `json:"count,omitempty"`
	Sum   *float64 `json:"sum,omitempty"`
	Mean  *float64 `json:"mean,omitempty"`
	Min   *float64 `json:"min,omitempty"`
	Max   *float64 `json:"max,omitempty"`
	P50   *float64 `json:"p50,omitempty"`
	P90   *float64 `json:"p90,omitempty"`
	P99   *float64 `json:"p99,omitempty"`
}

// JSONFamily is one metric family in the JSON exposition.
type JSONFamily struct {
	Name   string       `json:"name"`
	Type   MetricType   `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []JSONSeries `json:"series"`
}

// WriteJSON renders the registry as a JSON document — the
// machine-friendly twin of WritePrometheus, with histogram quantile
// summaries instead of raw buckets.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := r.snapshotFamilies()
	out := make([]JSONFamily, 0, len(fams))
	for _, f := range fams {
		jf := JSONFamily{Name: f.name, Type: f.typ, Help: f.help, Series: []JSONSeries{}}
		for _, s := range f.series {
			js := JSONSeries{Labels: labelMap(s.labels)}
			switch m := s.metric.(type) {
			case *Counter:
				v := m.Value()
				js.Value = &v
			case *Gauge:
				v := m.Value()
				js.Value = &v
			case *Histogram:
				snap := m.Snapshot()
				js.Count = &snap.Count
				js.Sum = &snap.Sum
				if snap.Count > 0 {
					mean, mn, mx := snap.Mean(), snap.Min, snap.Max
					p50, p90, p99 := snap.Quantile(0.50), snap.Quantile(0.90), snap.Quantile(0.99)
					js.Mean, js.Min, js.Max, js.P50, js.P90, js.P99 = &mean, &mn, &mx, &p50, &p90, &p99
				}
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"metrics": out})
}

// labelMap converts a label set to the JSON exposition's map form.
func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for _, l := range labels {
		out[l.Key] = l.Value
	}
	return out
}

// Handler serves the registry: Prometheus text by default, JSON when the
// request asks for it (?format=json or an Accept header preferring
// application/json), and the lossless mergeable snapshot form on
// ?format=snapshot (what the gateway's federation poller pulls).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "snapshot" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.Snapshot().WriteJSON(w)
			return
		}
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// SideMux builds the sidecar mux the CLI tools expose behind their
// -metrics flags: /metrics and /healthz for the registry. Callers may
// mount extra debug handlers (trace.RegisterDebug) before serving it.
func (r *Registry) SideMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/healthz", HealthzHandler(nil))
	return mux
}

// ServeUntil serves h (or, when h is nil, the registry's SideMux) on addr
// until ctx is cancelled, then shuts the server down gracefully and
// releases the port. It blocks like http.ListenAndServe; callers run it
// in a goroutine. Returns nil on a ctx-triggered shutdown.
func (r *Registry) ServeUntil(ctx context.Context, addr string, h http.Handler) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return r.ServeListener(ctx, l, h)
}

// ServeListener is ServeUntil over an already-bound listener — the form
// tests use to grab an ephemeral port before serving.
func (r *Registry) ServeListener(ctx context.Context, l net.Listener, h http.Handler) error {
	if h == nil {
		h = r.SideMux()
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shctx)
	}()
	err := srv.Serve(l)
	<-done // Shutdown owns closing the listener; wait so the port is free on return.
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe serves the sidecar endpoint on addr forever — the
// pre-context form, kept for callers without a lifecycle to tie to.
func (r *Registry) ListenAndServe(addr string) error {
	return r.ServeUntil(context.Background(), addr, nil)
}

// HealthzHandler answers liveness probes: 200 "ok" while ready() is true
// (or always, when ready is nil), 503 "draining" otherwise — the signal a
// load balancer needs to stop routing to an instance that entered graceful
// shutdown.
func HealthzHandler(ready func() bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = io.WriteString(w, "draining\n")
			return
		}
		_, _ = io.WriteString(w, "ok\n")
	})
}
