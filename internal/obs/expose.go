package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families in registration order,
// series sorted by label set within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch m := s.metric.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtFloat(m.Value()))
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtFloat(m.Value()))
			case *Histogram:
				err = writePromHistogram(w, f.name, s.labels, m.Snapshot())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram renders one histogram series: cumulative _bucket
// lines, then _sum and _count.
func writePromHistogram(w io.Writer, name, labels string, s HistSnapshot) error {
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = fmtFloat(s.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, fmtFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
	return err
}

// mergeLabels splices an extra label into an existing rendered label set.
func mergeLabels(labels, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// fmtFloat renders floats the way Prometheus expects (shortest exact
// representation, Inf/NaN spelled out).
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// JSONSeries is one series in the JSON exposition.
type JSONSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Histogram summary fields (quantiles interpolated from buckets).
	Count *uint64  `json:"count,omitempty"`
	Sum   *float64 `json:"sum,omitempty"`
	Mean  *float64 `json:"mean,omitempty"`
	Min   *float64 `json:"min,omitempty"`
	Max   *float64 `json:"max,omitempty"`
	P50   *float64 `json:"p50,omitempty"`
	P90   *float64 `json:"p90,omitempty"`
	P99   *float64 `json:"p99,omitempty"`
}

// JSONFamily is one metric family in the JSON exposition.
type JSONFamily struct {
	Name   string       `json:"name"`
	Type   MetricType   `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []JSONSeries `json:"series"`
}

// WriteJSON renders the registry as a JSON document — the
// machine-friendly twin of WritePrometheus, with histogram quantile
// summaries instead of raw buckets.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := r.snapshotFamilies()
	out := make([]JSONFamily, 0, len(fams))
	for _, f := range fams {
		jf := JSONFamily{Name: f.name, Type: f.typ, Help: f.help, Series: []JSONSeries{}}
		for _, s := range f.series {
			js := JSONSeries{Labels: parseLabels(s.labels)}
			switch m := s.metric.(type) {
			case *Counter:
				v := m.Value()
				js.Value = &v
			case *Gauge:
				v := m.Value()
				js.Value = &v
			case *Histogram:
				snap := m.Snapshot()
				js.Count = &snap.Count
				js.Sum = &snap.Sum
				if snap.Count > 0 {
					mean, mn, mx := snap.Mean(), snap.Min, snap.Max
					p50, p90, p99 := snap.Quantile(0.50), snap.Quantile(0.90), snap.Quantile(0.99)
					js.Mean, js.Min, js.Max, js.P50, js.P90, js.P99 = &mean, &mn, &mx, &p50, &p90, &p99
				}
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"metrics": out})
}

// parseLabels inverts labelKey's canonical fragment back into a map.
func parseLabels(s string) map[string]string {
	if s == "" {
		return nil
	}
	out := make(map[string]string)
	s = strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			break
		}
		key := s[:eq]
		rest := s[eq+1:]
		val, n := unquotePrefix(rest)
		out[key] = val
		s = strings.TrimPrefix(rest[n:], ",")
	}
	return out
}

// unquotePrefix unquotes the leading Go-quoted string of s, returning the
// value and the number of bytes consumed.
func unquotePrefix(s string) (string, int) {
	for i := 1; i < len(s); i++ {
		if s[i] == '"' && s[i-1] != '\\' {
			v, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return s[:i+1], i + 1
			}
			return v, i + 1
		}
	}
	return s, len(s)
}

// Handler serves the registry: Prometheus text by default, JSON when the
// request asks for it (?format=json or an Accept header preferring
// application/json).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ListenAndServe serves /metrics and /healthz for the registry on addr —
// the sidecar endpoint the CLI tools (hta-bench, hta-live) expose behind
// their -metrics flags so long runs can be watched live. Blocks like
// http.ListenAndServe; callers run it in a goroutine.
func (r *Registry) ListenAndServe(addr string) error {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/healthz", HealthzHandler(nil))
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}

// HealthzHandler answers liveness probes: 200 "ok" while ready() is true
// (or always, when ready is nil), 503 "draining" otherwise — the signal a
// load balancer needs to stop routing to an instance that entered graceful
// shutdown.
func HealthzHandler(ready func() bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = io.WriteString(w, "draining\n")
			return
		}
		_, _ = io.WriteString(w, "ok\n")
	})
}
