package obs

import (
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestPrometheusEscaping pins the exposition escaping rules: HELP text
// escapes backslash and newline; label values escape backslash, quote and
// newline. Without these, a single awkward help string or label value
// corrupts the whole scrape.
func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "line one\nline two with back\\slash").Inc()
	r.Gauge("esc_gauge", "g", L("path", `C:\tmp`), L("msg", "say \"hi\"\nnow")).Set(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total line one\nline two with back\\slash`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `msg="say \"hi\"\nnow"`) {
		t.Fatalf("label value quote/newline not escaped:\n%s", out)
	}
	if !strings.Contains(out, `path="C:\\tmp"`) {
		t.Fatalf("label value backslash not escaped:\n%s", out)
	}
	// No raw newlines may survive inside any single line.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "line two") && !strings.HasPrefix(line, "# HELP") {
			t.Fatalf("help text leaked onto its own line: %q", line)
		}
	}
}

// TestPrometheusHistogramLabelEscaping covers the _bucket path, which
// splices the le label next to escaped user labels.
func TestPrometheusHistogramLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Histogram("esc_seconds", "h", []float64{0.1, 1}, L("op", "a\"b")).Observe(0.05)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `esc_seconds_bucket{op="a\"b",le="0.1"} 1`) {
		t.Fatalf("bucket line mis-rendered:\n%s", out)
	}
	if !strings.Contains(out, `esc_seconds_count{op="a\"b"} 1`) {
		t.Fatalf("count line mis-rendered:\n%s", out)
	}
}

// TestJSONLabelsRoundTrip: the JSON exposition reports the original,
// unescaped label values.
func TestJSONLabelsRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", "c", L("msg", "a\"b\nc\\d")).Inc()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"msg": "a\"b\nc\\d"`) {
		t.Fatalf("JSON labels lost the raw value:\n%s", b.String())
	}
}

// TestServeListenerShutdown: cancelling the context stops the sidecar
// server and releases its port — the -metrics listener must not leak.
func TestServeListenerShutdown(t *testing.T) {
	r := NewRegistry()
	r.Counter("srv_total", "c").Inc()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.ServeListener(ctx, l, nil) }()

	// The server answers while the context is live.
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get("http://" + addr + "/metrics")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("GET /metrics never succeeded: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeListener returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeListener did not return after cancel")
	}
	// The port is free again: a fresh listener can bind the same address.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after shutdown: %v", err)
	}
	l2.Close()
}
