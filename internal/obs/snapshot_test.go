package obs

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestMergeHistProperty pins the federation invariants: merging two
// histogram snapshots preserves count and sum exactly, keeps bucket
// totals consistent, and quantile estimates over the merge stay within
// the bounds of the bucket holding the pooled exact quantile.
func TestMergeHistProperty(t *testing.T) {
	bounds := DurationBuckets()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		ha, hb := newHistogram(bounds), newHistogram(bounds)
		var all []float64
		na, nb := rng.Intn(300), rng.Intn(300)
		observe := func(h *Histogram, n int) {
			for i := 0; i < n; i++ {
				// Log-uniform across the bucket range, occasionally past
				// the last bound (the +Inf overflow bucket).
				v := math.Pow(10, rng.Float64()*9-6.5)
				h.Observe(v)
				all = append(all, v)
			}
		}
		observe(ha, na)
		observe(hb, nb)
		m, err := MergeHist(ha.Snapshot(), hb.Snapshot())
		if err != nil {
			t.Fatalf("trial %d: MergeHist: %v", trial, err)
		}
		if m.Count != uint64(na+nb) {
			t.Fatalf("trial %d: merged count %d, want %d", trial, m.Count, na+nb)
		}
		var bucketTotal uint64
		for _, c := range m.Counts {
			bucketTotal += c
		}
		if bucketTotal != m.Count {
			t.Fatalf("trial %d: bucket total %d != count %d", trial, bucketTotal, m.Count)
		}
		var exactSum float64
		for _, v := range all {
			exactSum += v
		}
		if math.Abs(m.Sum-exactSum) > 1e-9*math.Max(1, math.Abs(exactSum)) {
			t.Fatalf("trial %d: merged sum %g, want %g", trial, m.Sum, exactSum)
		}
		if len(all) == 0 {
			continue
		}
		sort.Float64s(all)
		if m.Min != all[0] || m.Max != all[len(all)-1] {
			t.Fatalf("trial %d: merged min/max %g/%g, want %g/%g",
				trial, m.Min, m.Max, all[0], all[len(all)-1])
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			est := m.Quantile(q)
			// Exact pooled quantile by the same rank rule the estimator
			// uses (first cumulative count reaching q·N).
			idx := int(math.Ceil(q*float64(len(all)))) - 1
			if idx < 0 {
				idx = 0
			}
			exact := all[idx]
			bi := sort.SearchFloat64s(bounds, exact)
			lo := math.Inf(-1)
			if bi > 0 {
				lo = bounds[bi-1]
			}
			hi := math.Inf(1)
			if bi < len(bounds) {
				hi = bounds[bi]
			}
			// The estimate must land inside the bucket holding the exact
			// quantile, tightened by the observed range.
			if est < math.Max(lo, m.Min)-1e-12 || est > math.Min(hi, m.Max)+1e-12 {
				t.Fatalf("trial %d: q=%g estimate %g outside bucket (%g, %g] (exact %g, range [%g, %g])",
					trial, q, est, lo, hi, exact, m.Min, m.Max)
			}
		}
	}
}

func TestMergeHistEdges(t *testing.T) {
	bounds := []float64{1, 2, 4}
	h := newHistogram(bounds)
	h.Observe(1.5)
	h.Observe(3)
	empty := newHistogram(bounds).Snapshot()
	empty.Bounds = nil // a node that never registered the family
	empty.Counts = nil

	m, err := MergeHist(h.Snapshot(), empty)
	if err != nil || m.Count != 2 {
		t.Fatalf("empty right side: %v count=%d", err, m.Count)
	}
	m, err = MergeHist(empty, h.Snapshot())
	if err != nil || m.Count != 2 {
		t.Fatalf("empty left side: %v count=%d", err, m.Count)
	}

	other := newHistogram([]float64{1, 3, 9}).Snapshot()
	other.Count = 1
	if _, err := MergeHist(h.Snapshot(), other); err == nil {
		t.Fatal("mismatched bounds: want error")
	}
}

func TestMergeSnapshots(t *testing.T) {
	mk := func(reqs float64, lat ...float64) Snapshot {
		r := NewRegistry()
		r.Counter("reqs_total", "requests", L("endpoint", "/api")).Add(reqs)
		r.Gauge("in_flight", "").Set(reqs / 2)
		h := r.Histogram("latency_seconds", "", DurationBuckets())
		for _, v := range lat {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	merged := MergeSnapshots(map[string]Snapshot{
		"n0": mk(3, 0.1, 0.2),
		"n1": mk(5, 0.4),
	})

	fam := func(name string) *FamilySnapshot {
		for i := range merged.Families {
			if merged.Families[i].Name == name {
				return &merged.Families[i]
			}
		}
		t.Fatalf("family %s missing", name)
		return nil
	}

	// Counter: rollup (no node label) sums across nodes, plus one labeled
	// series per node.
	reqs := fam("reqs_total")
	var rollup, perNode int
	for _, s := range reqs.Series {
		if _, ok := s.Labels[NodeLabel]; ok {
			perNode++
			continue
		}
		rollup++
		if s.Value == nil || *s.Value != 8 {
			t.Fatalf("counter rollup = %v, want 8", s.Value)
		}
	}
	if rollup != 1 || perNode != 2 {
		t.Fatalf("counter series: %d rollup, %d per-node", rollup, perNode)
	}

	// Gauge: per-node only, no rollup.
	for _, s := range fam("in_flight").Series {
		if _, ok := s.Labels[NodeLabel]; !ok {
			t.Fatalf("gauge rollup series should not exist: %+v", s)
		}
	}

	// Histogram: per-node plus a bucket-merged rollup.
	lat := fam("latency_seconds")
	var histRollup *HistSnapshot
	perNode = 0
	for _, s := range lat.Series {
		if _, ok := s.Labels[NodeLabel]; ok {
			perNode++
			continue
		}
		histRollup = s.Hist
	}
	if perNode != 2 || histRollup == nil {
		t.Fatalf("histogram series: %d per-node, rollup=%v", perNode, histRollup)
	}
	if histRollup.Count != 3 || math.Abs(histRollup.Sum-0.7) > 1e-12 {
		t.Fatalf("histogram rollup count=%d sum=%g, want 3/0.7", histRollup.Count, histRollup.Sum)
	}
}

func TestSnapshotJSONRoundtrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help").Inc()
	r.Histogram("h_seconds", "", []float64{1, 2}) // empty: ±Inf min/max elided
	r.Histogram("h2_seconds", "", []float64{1, 2}).Observe(1.5)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range got.Families {
		for _, s := range f.Series {
			if s.Hist == nil {
				continue
			}
			switch f.Name {
			case "h_seconds":
				if !math.IsInf(s.Hist.Min, 1) || !math.IsInf(s.Hist.Max, -1) {
					t.Fatalf("empty hist sentinels lost: min=%g max=%g", s.Hist.Min, s.Hist.Max)
				}
			case "h2_seconds":
				if s.Hist.Min != 1.5 || s.Hist.Max != 1.5 || s.Hist.Count != 1 {
					t.Fatalf("hist roundtrip: %+v", s.Hist)
				}
			}
		}
	}

	// The merged form must render as valid Prometheus text.
	var prom bytes.Buffer
	merged := MergeSnapshots(map[string]Snapshot{"a": got})
	if err := merged.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(prom.Bytes(), []byte(`c_total{node="a"} 1`)) {
		t.Fatalf("merged exposition missing node label:\n%s", prom.String())
	}
}
