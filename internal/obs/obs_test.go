package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "h", L("path", "/x"))
	b := r.Counter("hits_total", "h", L("path", "/x"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("hits_total", "h", L("path", "/y"))
	if a == c {
		t.Fatal("different labels must return a different counter")
	}
	// Label order must not matter.
	d := r.Gauge("multi", "", L("a", "1"), L("b", "2"))
	e := r.Gauge("multi", "", L("b", "2"), L("a", "1"))
	if d != e {
		t.Fatal("label order must not distinguish series")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid name")
		}
	}()
	r.Counter("bad name", "")
}

func TestConcurrentCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 10000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %v, want %d", got, workers*perWorker)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", DurationBuckets())
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000) // 1ms .. 1s uniform
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 0.001 || s.Max != 1.0 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	p50 := s.Quantile(0.5)
	// Log-spaced buckets give coarse absolute accuracy; p50 of uniform
	// (0,1] must land within the bucket containing 0.5.
	if p50 < 0.3 || p50 > 0.7 {
		t.Fatalf("p50 = %v, want ~0.5", p50)
	}
	if q0, q1 := s.Quantile(0), s.Quantile(1); q0 < s.Min || q1 > s.Max {
		t.Fatalf("q0/q1 = %v/%v outside [min,max]", q0, q1)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty_seconds", "", nil)
	s := h.Snapshot()
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) {
		t.Fatal("empty histogram must report NaN quantiles and mean")
	}
}

func TestPrometheusRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests served", L("path", "/api/tasks")).Add(3)
	r.Gauge("inflight", "").Set(2)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP req_total requests served",
		"# TYPE req_total counter",
		`req_total{path="/api/tasks"} 3`,
		"# TYPE inflight gauge",
		"inflight 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q\n--- got:\n%s", want, out)
		}
	}
}

func TestJSONRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", L("k", "v")).Add(7)
	h := r.Histogram("h_seconds", "", nil)
	h.Observe(0.25)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []JSONFamily `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, b.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("families = %d, want 2", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "c_total" || *doc.Metrics[0].Series[0].Value != 7 {
		t.Fatalf("counter family mangled: %+v", doc.Metrics[0])
	}
	if doc.Metrics[0].Series[0].Labels["k"] != "v" {
		t.Fatalf("labels mangled: %+v", doc.Metrics[0].Series[0].Labels)
	}
	hs := doc.Metrics[1].Series[0]
	if *hs.Count != 1 || *hs.P50 < 0 {
		t.Fatalf("histogram series mangled: %+v", hs)
	}
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("default content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("text body = %q", rec.Body.String())
	}

	req = httptest.NewRequest("GET", "/metrics?format=json", nil)
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatal("json body invalid")
	}
}

func TestHealthz(t *testing.T) {
	ready := true
	h := HealthzHandler(func() bool { return ready })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Fatalf("healthy: %d %q", rec.Code, rec.Body.String())
	}
	ready = false
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("draining: %d", rec.Code)
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_seconds", "", nil)
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatal("span duration not positive")
	}
	if s := h.Snapshot(); s.Count != 1 || s.Sum <= 0 {
		t.Fatalf("span not recorded: %+v", s)
	}
	// Inert spans must be safe.
	StartSpan(nil).End()
	var zero Span
	if zero.End() != 0 {
		t.Fatal("zero span must be inert")
	}
}

func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("gated_total", "")
	h := r.Histogram("gated_seconds", "", nil)
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() must reflect the switch")
	}
	c.Inc()
	h.Observe(1)
	SetEnabled(true)
	if c.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("writes recorded while disabled")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("writes not recorded after re-enable")
	}
}
