package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a streaming histogram over fixed bucket boundaries.
// Observe is lock-free: a binary search over the (immutable) bounds plus
// four atomic updates (bucket count, total count, sum, min/max). Quantiles
// are estimated from a Snapshot by linear interpolation inside the bucket
// holding the target rank, clamped to the observed [Min, Max].
//
// Concurrent Observe calls are safe. Snapshot taken concurrently with
// writes is not a single atomic cut — per-field counts may disagree by the
// handful of observations in flight — which is the standard trade for a
// lock-free write path; scrape-time consistency at that granularity is
// irrelevant for operational telemetry.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; bucket i counts v <= bounds[i]
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // float64 bits, initialized to +Inf
	maxBits atomic.Uint64 // float64 bits, initialized to -Inf
}

// newHistogram builds a histogram over the given bucket upper bounds.
// Bounds must be sorted strictly increasing and non-empty; an implicit
// +Inf bucket is appended.
func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v → bucket index
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds (exclusive of the implicit +Inf).
	Bounds []float64
	// Counts[i] is the number of observations v with v <= Bounds[i]
	// (and > Bounds[i-1]); Counts[len(Bounds)] is the +Inf overflow.
	Counts []uint64
	Count  uint64
	Sum    float64
	Min    float64 // +Inf when empty
	Max    float64 // -Inf when empty
}

// Snapshot copies the histogram state for rendering and quantile queries.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Min:    math.Float64frombits(h.minBits.Load()),
		Max:    math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns Sum/Count, or NaN when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the bucket containing the target rank, clamped to [Min, Max] so
// estimates never leave the observed range. Returns NaN when the histogram
// is empty or q is outside [0, 1]. Quantile is monotone in q.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo := s.Min
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) && s.Bounds[i] < hi {
				hi = s.Bounds[i]
			}
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			var v float64
			switch {
			case math.IsInf(lo, 0) && math.IsInf(hi, 0):
				v = lo
			case math.IsInf(lo, 0):
				// ±Inf edges (infinite observations, or Min/Max still at
				// their sentinels on a torn concurrent snapshot) cannot be
				// interpolated — collapse to the finite edge; the final
				// clamp keeps the result inside [Min, Max].
				v = hi
			case math.IsInf(hi, 0):
				v = lo
			default:
				if lo > hi {
					lo = hi
				}
				v = lo + frac*(hi-lo)
			}
			return clamp(v, s.Min, s.Max)
		}
		cum = next
	}
	return s.Max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DurationBuckets are the default bounds (in seconds) for latency
// histograms: log-spaced from 1µs to ~100s, four buckets per decade.
// Resolution is ~1.78× per bucket — tight enough that an interpolated p99
// is within a factor of two of truth at any scale the pipeline hits.
func DurationBuckets() []float64 { return logBuckets(1e-6, 100, 4) }

// SizeBuckets are default bounds for count-valued histograms (batch sizes,
// queue drains): log-spaced from 1 to 1e6, three buckets per decade.
func SizeBuckets() []float64 { return logBuckets(1, 1e6, 3) }

// logBuckets generates log-spaced bounds from lo to hi inclusive with
// perDecade buckets per factor of ten.
func logBuckets(lo, hi float64, perDecade int) []float64 {
	var out []float64
	ratio := math.Pow(10, 1/float64(perDecade))
	for v := lo; v < hi*(1+1e-9); v *= ratio {
		out = append(out, v)
	}
	return out
}
