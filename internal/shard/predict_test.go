package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/stream"
)

// TestPredictiveStealMovesBeforeWatermark pins the point of the demand
// forecaster: a shard whose *projected* backlog crosses the watermark
// donates work while its actual backlog is still at or under it — and the
// reactive engine, given the identical state, does nothing.
func TestPredictiveStealMovesBeforeWatermark(t *testing.T) {
	mk := func(predictive bool) *Engine {
		return testEngine(t, Config{
			Shards: 2, StealInterval: -1, StealWatermark: 4, StealBatch: 16,
			Predictive: predictive,
			Journal:    ops.NewJournal(64),
			Stream:     stream.Config{Xmax: 4, BufferLimit: 64},
		})
	}
	setup := func(e *Engine) *core.Worker {
		workers, tasks := genWorkload(21, 40, 12)
		var recv *core.Worker
		for _, w := range workers {
			if e.ShardOf(w.ID) == 1 {
				recv = w
				break
			}
		}
		if recv == nil {
			t.Fatal("no generated worker hashes to shard 1")
		}
		if _, err := e.AddWorker(recv); err != nil {
			t.Fatal(err)
		}
		// Backlog exactly at the watermark: the reactive trigger
		// (backlog > watermark) stays quiet.
		for _, task := range tasks[:4] {
			e.submitted.Add(1)
			e.markSeen(task.ID)
			e.actors[0].call(func(asn *stream.Assigner) { _ = asn.BufferTask(task) })
		}
		return recv
	}

	reactive := mk(false)
	setup(reactive)
	if moved := reactive.StealOnce(); moved != 0 {
		t.Fatalf("reactive engine moved %d tasks with backlog == watermark", moved)
	}

	pred := mk(true)
	setup(pred)
	if !pred.Predictive() {
		t.Fatal("Predictive() false on a predictive engine")
	}
	// A burst the forecaster has seen but the queue has not yet absorbed:
	// arrival rate 50/round, horizon 3 → projected backlog 4 + 150.
	pred.forecast[0].RecordArrivals(50)
	pred.ForecastTick()
	moved := pred.StealOnce()
	if moved != 4 {
		t.Fatalf("predictive engine moved %d tasks, want 4 (full actual backlog)", moved)
	}
	if v := pred.metrics.ForecastBreaches.Value(); v < 1 {
		t.Fatalf("ForecastBreaches = %v after a proactive steal", v)
	}
	if !pred.Stats().Conserved() {
		t.Fatalf("conservation violated after predictive steal: %+v", pred.Stats())
	}
	var sawForecast bool
	for _, ev := range pred.journal.Snapshot(64) {
		if ev.Type == ops.EventForecast {
			sawForecast = true
		}
	}
	if !sawForecast {
		t.Fatal("no forecast_breach event journaled")
	}
}

// TestExpireOnceJournalsAndConserves checks the expiry sweep end to end:
// due tasks leave the buffer exactly once, are counted into Stats.Expired,
// journaled with their IDs, stay in the duplicate filter, and the
// conservation equation keeps balancing.
func TestExpireOnceJournalsAndConserves(t *testing.T) {
	var clock atomic.Int64
	clock.Store(1_000)
	j := ops.NewJournal(64)
	e := testEngine(t, Config{
		Shards: 1, StealInterval: -1, Journal: j,
		Stream: stream.Config{
			Xmax: 1, BufferLimit: 32, DeadlineAware: true,
			Now: clock.Load,
		},
	})
	// No workers: every offer buffers.
	_, tasks := genWorkload(5, 0, 4)
	for i, task := range tasks {
		if i < 3 {
			task.Deadline = 2_000
		}
		if _, err := e.OfferTask(task); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.ExpireOnce(1_500); n != 0 {
		t.Fatalf("ExpireOnce expired %d tasks before any deadline", n)
	}
	clock.Store(3_000)
	if n := e.ExpireOnce(clock.Load()); n != 3 {
		t.Fatalf("ExpireOnce expired %d tasks, want 3", n)
	}
	st := e.Stats()
	if st.Expired != 3 || st.Buffered != 1 {
		t.Fatalf("expired=%d buffered=%d, want 3 and 1", st.Expired, st.Buffered)
	}
	if !st.Conserved() {
		t.Fatalf("conservation violated after expiry: %+v", st)
	}
	if v := e.metrics.Expired.Value(); v != 3 {
		t.Fatalf("engine Expired counter = %v, want 3", v)
	}
	// Expired IDs stay in the duplicate filter — expiry is not a re-offer
	// license.
	if _, err := e.OfferTask(tasks[0]); err == nil {
		t.Fatal("expired task accepted as a fresh offer")
	}
	var ev *ops.Event
	for _, cand := range j.Snapshot(64) {
		if cand.Type == ops.EventExpire {
			c := cand
			ev = &c
		}
	}
	if ev == nil {
		t.Fatal("no deadline_expire event journaled")
	}
	if ev.Attrs["count"] != "3" || ev.Attrs["tasks"] == "" {
		t.Fatalf("expire event attrs = %v, want count=3 with task IDs", ev.Attrs)
	}
}

// TestLearnedWindowAppliedOnReArrival drives the WindowTracker through
// the engine: two observed sessions teach it a mean session length, and
// the third arrival stamps the learned departure estimate onto the
// worker's shard so routing can avoid it. A declared window then takes
// precedence.
func TestLearnedWindowAppliedOnReArrival(t *testing.T) {
	const sec = int64(1_000_000_000)
	var clock atomic.Int64
	e := testEngine(t, Config{
		Shards: 1, StealInterval: -1, LearnWindows: true,
		Stream: stream.Config{Xmax: 1, DeadlineAware: true, Now: clock.Load},
	})
	workers, _ := genWorkload(9, 1, 0)
	w := workers[0]

	clock.Store(0)
	if _, err := e.AddWorker(w); err != nil {
		t.Fatal(err)
	}
	if wnd, _ := e.Window(w.ID); wnd != 0 {
		t.Fatalf("window %d before any observed session", wnd)
	}
	clock.Store(10 * sec) // session 1: 10s
	if _, err := e.RemoveWorker(w.ID); err != nil {
		t.Fatal(err)
	}

	clock.Store(30 * sec)
	if _, err := e.AddWorker(w); err != nil {
		t.Fatal(err)
	}
	if wnd, _ := e.Window(w.ID); wnd != 0 {
		t.Fatalf("window %d with only one observed session (MinSessions=2)", wnd)
	}
	clock.Store(50 * sec) // session 2: 20s → mean = 0.7·10 + 0.3·20 = 13s
	if _, err := e.RemoveWorker(w.ID); err != nil {
		t.Fatal(err)
	}

	clock.Store(100 * sec)
	if _, err := e.AddWorker(w); err != nil {
		t.Fatal(err)
	}
	wnd, err := e.Window(w.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := 113 * sec; wnd != want {
		t.Fatalf("learned window %d, want %d (arrival + 13s mean session)", wnd, want)
	}

	// Declarations override the learned estimate until the next departure.
	if err := e.SetWindow(w.ID, 500*sec); err != nil {
		t.Fatal(err)
	}
	if wnd, _ := e.Window(w.ID); wnd != 500*sec {
		t.Fatalf("declared window %d, want %d", wnd, 500*sec)
	}
}

// TestConservationWithExpiryUnderChurn is the PR 10 form of the engine's
// core property test: with offers (half deadlined), completions, steal
// rounds and expiry sweeps all racing, every submitted task lands in
// exactly one of {active, completed, buffered, dropped, expired} at
// quiescence. Run under -race this exercises the expiry path against the
// mailbox protocol.
func TestConservationWithExpiryUnderChurn(t *testing.T) {
	var clock atomic.Int64
	clock.Store(1)
	e := testEngine(t, Config{
		Shards:        4,
		StealInterval: -1,
		StealBatch:    8,
		Stream: stream.Config{
			Xmax: 2, BufferLimit: 32, DeadlineAware: true,
			Now: clock.Load,
		},
	})
	workers, _ := genWorkload(31, 16, 0)
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}

	const offerers, tasksEach = 4, 150
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < offerers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen, _ := genWorkloadTasks(int64(100+g), tasksEach)
			rng := rand.New(rand.NewSource(int64(g)))
			for i, task := range gen {
				task.ID = fmt.Sprintf("o%d-%04d-%s", g, i, task.ID)
				if i%2 == 0 {
					// Deadlines from nearly-due to comfortably distant, so
					// the expirer catches a real share of the buffered ones.
					task.Deadline = clock.Load() + int64(1+rng.Intn(2_000))
				}
				if _, err := e.OfferTask(task); err != nil && !errors.Is(err, stream.ErrBufferFull) {
					t.Errorf("offerer %d: %v", g, err)
					return
				}
			}
		}(g)
	}

	var pollers sync.WaitGroup
	for c := 0; c < 2; c++ {
		pollers.Add(1)
		go func(c int) {
			defer pollers.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ids := e.WorkerIDs()
				if len(ids) == 0 {
					continue
				}
				wid := ids[rng.Intn(len(ids))]
				active, err := e.Active(wid)
				if err != nil || len(active) == 0 {
					continue
				}
				_, _ = e.Complete(wid, active[rng.Intn(len(active))])
			}
		}(c)
	}

	// Expirer: advances the logical clock and sweeps — the clock only
	// moves forward, so a task's due-ness is monotonic.
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.ExpireOnce(clock.Add(100))
			}
		}
	}()

	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.StealOnce()
			}
		}
	}()

	wg.Wait()
	close(stop)
	pollers.Wait()
	// One final sweep at a far-future instant: whatever deadlined work is
	// still buffered must expire cleanly, not linger uncounted.
	e.ExpireOnce(clock.Load() + 1_000_000)

	st := e.Stats()
	if want := int64(offerers * tasksEach); st.Submitted != want {
		t.Fatalf("submitted %d, want %d", st.Submitted, want)
	}
	if !st.Conserved() {
		t.Fatalf("conservation violated at quiescence: submitted=%d active=%d completed=%d buffered=%d dropped=%d expired=%d",
			st.Submitted, st.Active, st.Completed, st.Buffered, st.Dropped, st.Expired)
	}
	if st.Completed == 0 {
		t.Fatal("no task completed")
	}
	if st.Expired == 0 {
		t.Fatal("no task expired — the sweep never caught a deadline")
	}
}

// TestSnapshotRoundTripDeadlinesWindowsExpired extends the snapshot
// contract to the predictive fields: task deadlines, worker windows and
// the expired counters all survive a save/restore, and the restored
// engine's conservation equation still closes after a further expiry.
func TestSnapshotRoundTripDeadlinesWindowsExpired(t *testing.T) {
	var clock atomic.Int64
	clock.Store(1_000)
	cfg := Config{
		Shards: 2, StealInterval: -1,
		Stream: stream.Config{
			Xmax: 1, BufferLimit: 32, DeadlineAware: true,
			Now: clock.Load,
		},
	}
	e := testEngine(t, cfg)
	workers, tasks := genWorkload(13, 1, 6)
	w := workers[0]
	if _, err := e.AddWorker(w); err != nil {
		t.Fatal(err)
	}
	if err := e.SetWindow(w.ID, 9_000); err != nil {
		t.Fatal(err)
	}
	tasks[0].Deadline = 8_000 // assigned to w (Xmax 1)
	tasks[1].Deadline = 2_000 // buffered, expires before the snapshot
	tasks[2].Deadline = 5_000 // buffered, expires after the restore
	for _, task := range tasks[:4] {
		if _, err := e.OfferTask(task); err != nil {
			t.Fatal(err)
		}
	}
	clock.Store(3_000)
	if n := e.ExpireOnce(clock.Load()); n != 1 {
		t.Fatalf("pre-snapshot ExpireOnce = %d, want 1", n)
	}

	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	cfg.Registry = nil // fresh instruments for the restored engine
	r := func() *Engine {
		r, err := Restore(bytes.NewReader(buf.Bytes()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Close)
		return r
	}()

	st := r.Stats()
	if st.Expired != 1 {
		t.Fatalf("restored Expired = %d, want 1", st.Expired)
	}
	if !st.Conserved() {
		t.Fatalf("restored engine not conserved: %+v", st)
	}
	if wnd, err := r.Window(w.ID); err != nil || wnd != 9_000 {
		t.Fatalf("restored window = %d (%v), want 9000", wnd, err)
	}
	// The buffered deadline survived the round trip: advancing past it
	// expires exactly the one task carrying it.
	clock.Store(6_000)
	if n := r.ExpireOnce(clock.Load()); n != 1 {
		t.Fatalf("post-restore ExpireOnce = %d, want 1", n)
	}
	st = r.Stats()
	if st.Expired != 2 {
		t.Fatalf("restored Expired after sweep = %d, want 2", st.Expired)
	}
	if !st.Conserved() {
		t.Fatalf("restored engine not conserved after sweep: %+v", st)
	}
}
