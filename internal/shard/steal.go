package shard

import (
	"context"
	"sort"
	"strconv"
	"time"

	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/trace"
)

// stealLoop is the rebalancer goroutine: every StealInterval it runs one
// bounded steal round. Separate goroutine rather than piggybacking on
// event handlers so that stealing keeps working when a hot shard's
// mailbox is saturated and cold shards are idle.
func (e *Engine) stealLoop() {
	defer close(e.stealDone)
	tick := time.NewTicker(e.cfg.StealInterval)
	defer tick.Stop()
	for {
		select {
		case <-e.stopSteal:
			return
		case <-tick.C:
			e.ForecastTick()
			e.StealOnce()
		}
	}
}

// stealPlan pairs one overloaded donor with one receiver.
type stealPlan struct {
	from, to int
	n        int
}

// StealOnce runs a single rebalance round: shards whose backlog exceeds
// the watermark donate up to StealBatch buffered tasks to shards with
// free capacity (greatest free capacity first). Moved tasks are assigned
// on arrival when possible, buffered otherwise; if the receiver's buffer
// filled mid-flight the tasks bounce back to the donor, and only if the
// donor also filled are they dropped (counted — conservation holds).
// Returns the number of tasks re-homed. Exported for tests and for
// deployments that disable the periodic loop and trigger rebalancing
// themselves.
func (e *Engine) StealOnce() int {
	release, err := e.begin()
	if err != nil {
		return 0
	}
	defer release()
	n := len(e.actors)
	if n < 2 {
		return 0
	}
	// Plan from atomic load peeks — no mailbox traffic until a move is
	// actually warranted. Under Config.Predictive the donor trigger is the
	// *projected* backlog (forecast rates × horizon), so a shard riding a
	// burst donates before its queue actually crosses the watermark; the
	// reactive engine's load is just the current backlog, bit-identical to
	// the pre-forecast behaviour.
	backlog := make([]int, n)
	free := make([]int, n)
	load := make([]int, n)
	for i, a := range e.actors {
		backlog[i] = a.asn.Backlog()
		free[i] = a.asn.FreeCapacity()
		load[i] = backlog[i]
	}
	proactive := 0
	if e.forecast != nil {
		for i := range load {
			load[i] = int(e.forecast[i].PredictedBacklog(backlog[i], e.cfg.ForecastHorizon))
			if load[i] > e.cfg.StealWatermark && backlog[i] <= e.cfg.StealWatermark {
				proactive++
			}
		}
	}
	donors := make([]int, 0, n)
	receivers := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if load[i] > e.cfg.StealWatermark && backlog[i] > 0 {
			donors = append(donors, i)
		} else if free[i] > 0 {
			receivers = append(receivers, i)
		}
	}
	if proactive > 0 {
		// A breach the reactive trigger would not have seen yet.
		e.metrics.ForecastBreaches.Add(float64(proactive))
		e.journal.Emit(ops.EventForecast, "",
			"shards", strconv.Itoa(proactive),
			"watermark", strconv.Itoa(e.cfg.StealWatermark))
	}
	if len(donors) == 0 {
		return 0
	}
	maxBacklog := 0
	for _, d := range donors {
		if backlog[d] > maxBacklog {
			maxBacklog = backlog[d]
		}
	}
	e.journal.Emit(ops.EventWatermark, "",
		"shards", strconv.Itoa(len(donors)),
		"max_backlog", strconv.Itoa(maxBacklog),
		"watermark", strconv.Itoa(e.cfg.StealWatermark))
	if len(receivers) == 0 {
		return 0
	}
	sort.Slice(donors, func(i, j int) bool { return load[donors[i]] > load[donors[j]] })
	sort.Slice(receivers, func(i, j int) bool { return free[receivers[i]] > free[receivers[j]] })

	var plans []stealPlan
	ri := 0
	for _, d := range donors {
		if ri >= len(receivers) {
			break
		}
		// A shard cannot donate work it only *expects*: the excess is the
		// projected overflow capped by what is actually buffered now.
		excess := load[d] - e.cfg.StealWatermark
		if excess > backlog[d] {
			excess = backlog[d]
		}
		for excess > 0 && ri < len(receivers) {
			r := receivers[ri]
			k := min3(excess, free[r], e.cfg.StealBatch)
			if k <= 0 {
				ri++
				continue
			}
			plans = append(plans, stealPlan{from: d, to: r, n: k})
			excess -= k
			free[r] -= k
			if free[r] <= 0 {
				ri++
			}
		}
	}
	moved := 0
	for _, p := range plans {
		moved += e.executeSteal(p)
	}
	if moved > 0 {
		e.metrics.Steals.Inc()
		e.metrics.StolenTasks.Add(float64(moved))
		e.metrics.StealBatch.Observe(float64(moved))
		e.journal.Emit(ops.EventSteal, "",
			"moved", strconv.Itoa(moved),
			"pairs", strconv.Itoa(len(plans)))
	}
	return moved
}

// executeSteal moves up to p.n buffered tasks from p.from to p.to. Runs
// on the rebalancer (or caller) goroutine; the two actors are addressed
// strictly in sequence, never while the other is held, so no cycle can
// form.
func (e *Engine) executeSteal(p stealPlan) int {
	src, dst := e.actors[p.from], e.actors[p.to]
	// The in-flight batch rides in an engine-owned scratch slice
	// (TakeBufferedInto): steal rounds are frequent under sustained skew
	// and should not allocate a transfer slice each time. stealMu guards
	// the scratch against overlapping StealOnce calls from tests or
	// deployments that trigger rebalancing themselves.
	e.stealMu.Lock()
	defer e.stealMu.Unlock()
	tasks := e.stealScratch[:0]
	src.call(func(asn *stream.Assigner) { tasks = asn.TakeBufferedInto(p.n, tasks) })
	e.stealScratch = tasks[:0]
	if len(tasks) == 0 {
		return 0
	}
	var placed, bounced, dropped int
	dst.call(func(asn *stream.Assigner) {
		for i, t := range tasks {
			if _, ok := asn.TryAssign(t); ok {
				placed++
				continue
			}
			if err := asn.BufferTask(t); err == nil {
				placed++
				continue
			}
			// Receiver saturated mid-flight: everything from here on
			// bounces back to the donor.
			tasks = tasks[i:]
			bounced = len(tasks)
			return
		}
		tasks = nil
	})
	if bounced > 0 {
		src.call(func(asn *stream.Assigner) {
			for _, t := range tasks {
				if err := asn.BufferTask(t); err != nil {
					dropped++
				}
			}
		})
	}
	if dropped > 0 {
		// Donor re-filled past its limit while the batch was in flight —
		// the tasks have nowhere conservative to go; count them lost.
		src.dropped.Add(int64(dropped))
		e.metrics.Dropped.Add(float64(dropped))
	}
	if placed > 0 {
		src.metrics.Stolen.Add(float64(placed))
		dst.metrics.Received.Add(float64(placed))
	}
	if placed > 0 || dropped > 0 {
		_, span := e.tracer.Start(context.Background(), "shard.steal")
		span.SetAttrs(trace.Int("from", p.from), trace.Int("to", p.to),
			trace.Int("moved", placed), trace.Int("bounced", bounced-dropped),
			trace.Int("dropped", dropped))
		span.End()
	}
	return placed
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
