package shard

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring mapping worker IDs to shards. Each shard
// owns VirtualNodes points on the ring, so the mapping is (a) deterministic
// given (shards, vnodes) — the property the 1-shard determinism test and
// snapshot restore rely on — and (b) stable under resizing: growing from N
// to N+1 shards moves only the keys that land in the new shard's arcs,
// ~1/(N+1) of them, instead of rehashing everything the way `hash % N`
// would.
//
// The ring is immutable after construction; Resized builds a new one.
type Ring struct {
	shards int
	vnodes int
	points []ringPoint // sorted by hash, ties by shard
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring with the given shard count and virtual nodes per
// shard (default 64 when vnodes <= 0).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: ring needs >= 1 shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{shards: shards, vnodes: vnodes}
	r.points = make([]ringPoint, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  fnv1a(fmt.Sprintf("shard-%d#%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// VirtualNodes returns the per-shard point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Lookup maps a key (worker ID) to its owning shard: the first ring point
// clockwise of the key's hash.
func (r *Ring) Lookup(key string) int {
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].shard
}

// Resized returns a new ring with a different shard count but the same
// virtual-node scheme, so shared shards keep their points (and therefore
// most of their keys).
func (r *Ring) Resized(shards int) (*Ring, error) {
	return NewRing(shards, r.vnodes)
}

// fnv1a is the 64-bit FNV-1a hash (stdlib hash/fnv without the
// interface-allocation overhead on the Lookup path) with an avalanche
// finalizer. Raw FNV-1a is unusable for a hash ring: short keys that
// differ only in their last characters ("w0041" vs "w0042",
// "shard-0#7" vs "shard-0#8") hash into tight bands, so whole key
// populations land in one shard's arc. The multiply–xor–shift finisher
// (MurmurHash3 fmix64) spreads those bands over the full uint64 space.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
