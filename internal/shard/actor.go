package shard

import (
	"sync"
	"sync/atomic"

	"github.com/htacs/ata/internal/stream"
)

// actor is one shard: a bare stream.Assigner owned by a single goroutine
// that drains a bounded mailbox of closures. The actor model replaces the
// platform's one-big-mutex serialization — each shard serializes only its
// own workers' events, and cross-shard coordination happens by message,
// never by shared state.
//
// Protocol rules that keep the engine deadlock-free:
//
//   - only engine-level goroutines (callers, the rebalancer) send to
//     mailboxes; an actor never sends to another actor, so there are no
//     send cycles;
//   - a full mailbox blocks the sender (backpressure), it never drops;
//   - replies travel over per-request channels buffered for the full
//     fan-out, so an actor never blocks on a reply send.
type actor struct {
	id      int
	asn     *stream.Assigner
	mailbox chan func()
	done    chan struct{} // closed when the loop exits

	// completed, dropped and expired survive worker removal (the
	// assigner's per-worker done counters die with RemoveWorker), so the
	// engine's conservation accounting stays exact under churn.
	completed atomic.Int64
	dropped   atomic.Int64
	expired   atomic.Int64

	metrics *actorMetrics
}

func newActor(id int, asn *stream.Assigner, mailbox int, m *actorMetrics) *actor {
	a := &actor{
		id:      id,
		asn:     asn,
		mailbox: make(chan func(), mailbox),
		done:    make(chan struct{}),
		metrics: m,
	}
	go a.loop()
	return a
}

// loop is the actor goroutine: the only goroutine that ever touches asn.
//
// Messages drain in batches: after a blocking receive, the loop keeps
// pulling whatever is already queued without blocking and publishes the
// telemetry (mailbox depth, free capacity, batch size) once per batch
// instead of once per message. Under load the gauge updates amortize to
// near zero per event; when the mailbox is empty the batch is 1 and the
// behaviour matches the unbatched loop exactly.
func (a *actor) loop() {
	defer close(a.done)
	for fn := range a.mailbox {
		fn()
		batch := 1
	drain:
		for {
			select {
			case next, ok := <-a.mailbox:
				if !ok {
					a.publish(batch)
					return
				}
				next()
				batch++
			default:
				break drain
			}
		}
		a.publish(batch)
	}
}

// publish flushes the per-batch telemetry.
func (a *actor) publish(batch int) {
	a.metrics.Batch.Observe(float64(batch))
	a.metrics.Mailbox.Set(float64(len(a.mailbox)))
	a.metrics.Free.Set(float64(a.asn.FreeCapacity()))
}

// send enqueues fn without waiting for it to run. The caller must hold
// the engine's liveness read-lock (see Engine.post) so the mailbox cannot
// be closed mid-send. The mailbox gauge is published by the drain loop
// once per batch, not here: senders stay off the telemetry path.
func (a *actor) send(fn func()) {
	a.mailbox <- fn
}

// replyPool recycles the rendezvous channels behind call: a reply channel
// is used strictly once per call (one send, one receive), so a buffered
// channel returns to the pool empty and call-heavy traffic allocates no
// channels in steady state.
var replyPool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// call runs fn on the actor goroutine and waits for it to finish —
// the synchronous request/reply half of the mailbox protocol.
func (a *actor) call(fn func(asn *stream.Assigner)) {
	ch := replyPool.Get().(chan struct{})
	a.send(func() {
		defer func() { ch <- struct{}{} }()
		fn(a.asn)
	})
	<-ch
	replyPool.Put(ch)
}

// stop closes the mailbox and waits for the loop to drain.
func (a *actor) stop() {
	close(a.mailbox)
	<-a.done
}
