package shard

import (
	"sync/atomic"

	"github.com/htacs/ata/internal/stream"
)

// actor is one shard: a bare stream.Assigner owned by a single goroutine
// that drains a bounded mailbox of closures. The actor model replaces the
// platform's one-big-mutex serialization — each shard serializes only its
// own workers' events, and cross-shard coordination happens by message,
// never by shared state.
//
// Protocol rules that keep the engine deadlock-free:
//
//   - only engine-level goroutines (callers, the rebalancer) send to
//     mailboxes; an actor never sends to another actor, so there are no
//     send cycles;
//   - a full mailbox blocks the sender (backpressure), it never drops;
//   - replies travel over per-request channels buffered for the full
//     fan-out, so an actor never blocks on a reply send.
type actor struct {
	id      int
	asn     *stream.Assigner
	mailbox chan func()
	done    chan struct{} // closed when the loop exits

	// completed and dropped survive worker removal (the assigner's
	// per-worker done counters die with RemoveWorker), so the engine's
	// conservation accounting stays exact under churn.
	completed atomic.Int64
	dropped   atomic.Int64

	metrics *actorMetrics
}

func newActor(id int, asn *stream.Assigner, mailbox int, m *actorMetrics) *actor {
	a := &actor{
		id:      id,
		asn:     asn,
		mailbox: make(chan func(), mailbox),
		done:    make(chan struct{}),
		metrics: m,
	}
	go a.loop()
	return a
}

// loop is the actor goroutine: the only goroutine that ever touches asn.
func (a *actor) loop() {
	defer close(a.done)
	for fn := range a.mailbox {
		fn()
		a.metrics.Mailbox.Set(float64(len(a.mailbox)))
		a.metrics.Free.Set(float64(a.asn.FreeCapacity()))
	}
}

// send enqueues fn without waiting for it to run. The caller must hold
// the engine's liveness read-lock (see Engine.post) so the mailbox cannot
// be closed mid-send.
func (a *actor) send(fn func()) {
	a.mailbox <- fn
	a.metrics.Mailbox.Set(float64(len(a.mailbox)))
}

// call runs fn on the actor goroutine and waits for it to finish —
// the synchronous request/reply half of the mailbox protocol.
func (a *actor) call(fn func(asn *stream.Assigner)) {
	ch := make(chan struct{})
	a.send(func() {
		defer close(ch)
		fn(a.asn)
	})
	<-ch
}

// stop closes the mailbox and waits for the loop to drain.
func (a *actor) stop() {
	close(a.mailbox)
	<-a.done
}
