package shard

import (
	"fmt"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0, 8); err == nil {
		t.Fatal("0 shards must be rejected")
	}
	r, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.VirtualNodes() != 64 {
		t.Fatalf("default vnodes = %d, want 64", r.VirtualNodes())
	}
	if r.Shards() != 3 {
		t.Fatalf("Shards() = %d", r.Shards())
	}
}

func TestRingLookupDeterministicAndTotal(t *testing.T) {
	r, err := NewRing(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("w%04d", i)
		s := r.Lookup(key)
		if s < 0 || s >= 4 {
			t.Fatalf("Lookup(%q) = %d outside [0,4)", key, s)
		}
		if again := r.Lookup(key); again != s {
			t.Fatalf("Lookup(%q) unstable: %d then %d", key, s, again)
		}
	}
}

// TestRingBalance checks the virtual nodes spread keys roughly evenly: no
// shard should be more than 2.5x the fair share over 10k keys.
func TestRingBalance(t *testing.T) {
	const shards, keys = 8, 10000
	r, err := NewRing(shards, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("worker-%d", i))]++
	}
	fair := keys / shards
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys", s)
		}
		if c > fair*5/2 {
			t.Fatalf("shard %d has %d keys, fair share %d — ring badly unbalanced", s, c, fair)
		}
	}
}

// TestRingResizeMovesFewKeys is the consistent-hashing property the ring
// exists for: growing N→N+1 shards must move roughly 1/(N+1) of the keys,
// not reshuffle everything the way hash%N does.
func TestRingResizeMovesFewKeys(t *testing.T) {
	const keys = 10000
	r4, err := NewRing(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := r4.Resized(5)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("worker-%d", i)
		if r4.Lookup(key) != r5.Lookup(key) {
			moved++
		}
	}
	// Ideal is 1/5 = 20%; allow slack for vnode granularity but fail hard
	// well before the 80% a modulo rehash would move.
	if moved > keys*35/100 {
		t.Fatalf("resize 4→5 moved %d/%d keys (>35%%) — not consistent hashing", moved, keys)
	}
	if moved == 0 {
		t.Fatal("resize 4→5 moved no keys — new shard owns nothing")
	}
}
