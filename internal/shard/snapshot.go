package shard

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/stream"
)

// snapshot wire format. Keywords are serialized as (universe, indices)
// pairs, the same representation the workload files use.
type taskSnap struct {
	ID       string  `json:"id"`
	Group    string  `json:"group,omitempty"`
	Reward   float64 `json:"reward,omitempty"`
	Universe int     `json:"universe"`
	Keywords []int   `json:"keywords"`
	// Deadline is the absolute UnixNano expiry (0 = never); omitted for
	// undeadlined tasks so pre-deadline snapshots serialize identically.
	Deadline int64 `json:"deadline,omitempty"`
}

type workerSnap struct {
	ID       string     `json:"id"`
	Alpha    float64    `json:"alpha"`
	Beta     float64    `json:"beta"`
	Universe int        `json:"universe"`
	Keywords []int      `json:"keywords"`
	Done     int        `json:"done"`
	Active   []taskSnap `json:"active,omitempty"`
	// Trust is the reputation multiplier; omitted (nil) when 1.0 so
	// pre-trust snapshots and trust-free engines serialize identically.
	Trust *float64 `json:"trust,omitempty"`
	// Window is the recorded availability-window end (UnixNano); omitted
	// when unknown (0), the same additive-field pattern as Trust.
	Window *int64 `json:"window,omitempty"`
}

type shardSnap struct {
	Shard     int          `json:"shard"`
	Completed int64        `json:"completed"`
	Dropped   int64        `json:"dropped"`
	Expired   int64        `json:"expired,omitempty"`
	Workers   []workerSnap `json:"workers"`
	Buffer    []taskSnap   `json:"buffer,omitempty"`
}

type engineSnap struct {
	Version   int         `json:"version"`
	Shards    int         `json:"shards"`
	Submitted int64       `json:"submitted"`
	Dropped   int64       `json:"dropped"`
	Expired   int64       `json:"expired,omitempty"`
	PerShard  []shardSnap `json:"per_shard"`
}

func taskToSnap(t *core.Task) taskSnap {
	return taskSnap{ID: t.ID, Group: t.Group, Reward: t.Reward,
		Universe: t.Keywords.Len(), Keywords: t.Keywords.Indices(),
		Deadline: t.Deadline}
}

func snapToTask(s taskSnap) (*core.Task, error) {
	if s.Universe < 1 {
		return nil, fmt.Errorf("shard: snapshot task %q: universe %d", s.ID, s.Universe)
	}
	for _, k := range s.Keywords {
		if k < 0 || k >= s.Universe {
			return nil, fmt.Errorf("shard: snapshot task %q: keyword %d outside universe %d", s.ID, k, s.Universe)
		}
	}
	return &core.Task{ID: s.ID, Group: s.Group, Reward: s.Reward,
		Keywords: bitset.FromIndices(s.Universe, s.Keywords...),
		Deadline: s.Deadline}, nil
}

// Snapshot writes the engine state as one JSON document — the merge of
// per-shard snapshots. All shard actors are parked on a barrier for the
// duration, so the cut is globally consistent: the conservation invariant
// that held in memory holds in the file.
func (e *Engine) Snapshot(w io.Writer) error {
	release, err := e.begin()
	if err != nil {
		return err
	}
	defer release()
	snap := engineSnap{
		Version:   1,
		Shards:    len(e.actors),
		Submitted: e.submitted.Load() + e.baseSubmitted,
	}
	// Dropped in the snapshot is the engine-wide total (offer rejections
	// + removal/steal overflow + restored history): one number that
	// Restore carries forward whole, so the conservation equation closes
	// across the restart.
	snap.Dropped = e.offerDropped.Load() + e.baseDropped
	snap.Expired = e.baseExpired
	e.quiesce(func() {
		var bufScratch []*core.Task
		for _, a := range e.actors {
			snap.Dropped += a.dropped.Load()
			snap.Expired += a.expired.Load()
			ss := shardSnap{
				Shard:     a.id,
				Completed: a.completed.Load(),
				Dropped:   a.dropped.Load(),
				Expired:   a.expired.Load(),
			}
			for _, id := range a.asn.WorkerIDs() {
				wk, _ := a.asn.Worker(id)
				done, _ := a.asn.Completed(id)
				active, _ := a.asn.ActiveTasks(id)
				wsnap := workerSnap{
					ID: id, Alpha: wk.Alpha, Beta: wk.Beta,
					Universe: wk.Keywords.Len(), Keywords: wk.Keywords.Indices(),
					Done: done,
				}
				if trust, terr := a.asn.Trust(id); terr == nil && trust != 1 {
					wsnap.Trust = &trust
				}
				if wnd, werr := a.asn.Window(id); werr == nil && wnd != 0 {
					wsnap.Window = &wnd
				}
				for _, t := range active {
					wsnap.Active = append(wsnap.Active, taskToSnap(t))
				}
				ss.Workers = append(ss.Workers, wsnap)
			}
			bufScratch = a.asn.BufferedInto(bufScratch[:0])
			for _, t := range bufScratch {
				ss.Buffer = append(ss.Buffer, taskToSnap(t))
			}
			snap.PerShard = append(snap.PerShard, ss)
		}
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// quiesce parks every shard actor on a barrier, runs f with exclusive
// access to all assigners (the channel handshake gives the caller
// happens-before on each actor's state), then releases the actors.
// Serialized by snapMu: two overlapping barriers could park the pool in
// incompatible orders and deadlock.
func (e *Engine) quiesce(f func()) {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	n := len(e.actors)
	arrived := make(chan struct{}, n)
	releaseCh := make(chan struct{})
	for _, a := range e.actors {
		a.send(func() {
			arrived <- struct{}{}
			<-releaseCh
		})
	}
	for i := 0; i < n; i++ {
		<-arrived
	}
	f()
	close(releaseCh)
}

// Restore rebuilds an engine from a Snapshot document. The shard count
// comes from cfg, not the snapshot — workers are re-partitioned by the
// ring, active sets are re-materialized on each worker exactly as saved,
// and buffered tasks are re-buffered on the owning worker-free shard with
// the smallest backlog. Counters carry over, so the global conservation
// invariant holds across the restart.
func Restore(r io.Reader, cfg Config) (*Engine, error) {
	var snap engineSnap
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("shard: decoding snapshot: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("shard: unsupported snapshot version %d", snap.Version)
	}
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	restore := func() error {
		var completed int64
		for _, ss := range snap.PerShard {
			completed += ss.Completed
			for _, wsnap := range ss.Workers {
				for _, k := range wsnap.Keywords {
					if k < 0 || k >= wsnap.Universe {
						return fmt.Errorf("shard: snapshot worker %q: keyword %d outside universe %d",
							wsnap.ID, k, wsnap.Universe)
					}
				}
				w := &core.Worker{
					ID: wsnap.ID, Alpha: wsnap.Alpha, Beta: wsnap.Beta,
					Keywords: bitset.FromIndices(wsnap.Universe, wsnap.Keywords...),
				}
				a := e.actors[e.ring.Lookup(w.ID)]
				var aerr error
				a.call(func(asn *stream.Assigner) {
					if _, aerr = asn.AddWorker(w); aerr != nil {
						return
					}
					if aerr = asn.RestoreDone(w.ID, wsnap.Done); aerr != nil {
						return
					}
					if wsnap.Trust != nil {
						// Applied before any buffer re-materialization, so a
						// restored quarantine never sees a drain.
						if _, aerr = asn.SetTrust(w.ID, *wsnap.Trust); aerr != nil {
							return
						}
					}
					if wsnap.Window != nil {
						aerr = asn.SetWindow(w.ID, *wsnap.Window)
					}
				})
				if aerr != nil {
					return aerr
				}
				if e.windows != nil {
					// The tracker starts a fresh session for the restored
					// worker; a saved window is re-declared so it keeps
					// precedence over the learned estimate.
					e.windows.Arrive(w.ID, e.now())
					if wsnap.Window != nil {
						e.windows.Declare(w.ID, *wsnap.Window)
					}
				}
				for _, tsnap := range wsnap.Active {
					t, terr := snapToTask(tsnap)
					if terr != nil {
						return terr
					}
					e.markSeen(t.ID)
					a.call(func(asn *stream.Assigner) { aerr = asn.ForceAssign(w.ID, t) })
					if aerr != nil {
						return aerr
					}
				}
			}
		}
		// Buffered tasks: the saved shard layout may not exist any more
		// (the restored engine can have a different shard count), so they
		// go to the currently least backlogged shards.
		for _, ss := range snap.PerShard {
			for _, tsnap := range ss.Buffer {
				t, terr := snapToTask(tsnap)
				if terr != nil {
					return terr
				}
				e.markSeen(t.ID)
				if err := e.bufferAnywhere(t); err != nil {
					// Smaller total buffer capacity than the snapshot
					// had: count the overflow (picked up by Stats via
					// the actor sum), keep the invariant.
					e.actors[0].dropped.Add(1)
					e.metrics.Dropped.Inc()
				}
			}
		}
		// Fresh actors restart their counters at zero; the base* fields
		// carry the whole history (snap.Dropped already folded the old
		// actors' drops in).
		e.baseSubmitted = snap.Submitted
		e.baseDropped = snap.Dropped
		e.baseCompleted = completed
		e.baseExpired = snap.Expired
		return nil
	}
	if err := restore(); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// markSeen registers a restored task in the global duplicate filter.
func (e *Engine) markSeen(id string) {
	e.seenMu.Lock()
	e.seen[id] = struct{}{}
	e.seenMu.Unlock()
}

// bufferAnywhere parks t on the least backlogged shard with buffer space.
func (e *Engine) bufferAnywhere(t *core.Task) error {
	best, bestBacklog := -1, -1
	for i, a := range e.actors {
		b := a.asn.Backlog()
		if best == -1 || b < bestBacklog {
			best, bestBacklog = i, b
		}
	}
	var err error
	for k := 0; k < len(e.actors); k++ {
		a := e.actors[(best+k)%len(e.actors)]
		a.call(func(asn *stream.Assigner) { err = asn.BufferTask(t) })
		if err == nil {
			return nil
		}
	}
	return err
}
