package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/workload"
)

// testRegistry isolates each engine's instruments so labeled series do
// not collide across tests.
func testEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(e.Close)
	return e
}

func genWorkload(seed int64, numWorkers, numTasks int) ([]*core.Worker, []*core.Task) {
	gen, err := workload.NewGenerator(workload.Config{Universe: 64, Seed: seed})
	if err != nil {
		panic(err)
	}
	return gen.Workers(numWorkers), gen.Tasks(numTasks/4+1, 4)[:numTasks]
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Shards: 0}); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := New(Config{Shards: 2, Mailbox: -1}); err == nil {
		t.Error("negative mailbox accepted")
	}
	if _, err := New(Config{Shards: 2, Stream: stream.Config{Xmax: 0}}); err == nil {
		t.Error("invalid stream config accepted")
	}
}

func TestClosedEngineRejectsOperations(t *testing.T) {
	e := testEngine(t, Config{Shards: 2, Stream: stream.Config{Xmax: 2}})
	e.Close()
	workers, tasks := genWorkload(1, 1, 1)
	if _, err := e.AddWorker(workers[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddWorker after Close: %v, want ErrClosed", err)
	}
	if _, err := e.OfferTask(tasks[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("OfferTask after Close: %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

func TestOfferRoutesToBestWorkerAcrossShards(t *testing.T) {
	e := testEngine(t, Config{Shards: 4, StealInterval: -1, Stream: stream.Config{Xmax: 2}})
	workers, tasks := genWorkload(7, 16, 32)
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	assigned := 0
	for _, task := range tasks {
		wid, err := e.OfferTask(task)
		if err != nil {
			t.Fatalf("OfferTask(%s): %v", task.ID, err)
		}
		if wid != "" {
			assigned++
			// The assignment must be routed to the worker's ring shard.
			active, err := e.Active(wid)
			if err != nil {
				t.Fatalf("Active(%s): %v", wid, err)
			}
			found := false
			for _, id := range active {
				if id == task.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("task %s reported assigned to %s but not in its active set", task.ID, wid)
			}
		}
	}
	// 16 workers × Xmax 2 = 32 slots for 32 tasks: everything must land.
	if assigned != 32 {
		t.Fatalf("assigned %d of 32 tasks with exactly 32 slots free", assigned)
	}
	st := e.Stats()
	if !st.Conserved() {
		t.Fatalf("conservation violated: %+v", st)
	}
	if st.Active != 32 || st.Buffered != 0 {
		t.Fatalf("want 32 active / 0 buffered, got %d / %d", st.Active, st.Buffered)
	}
}

func TestDuplicateTaskRejectedGlobally(t *testing.T) {
	e := testEngine(t, Config{Shards: 3, StealInterval: -1, Stream: stream.Config{Xmax: 2}})
	workers, tasks := genWorkload(3, 6, 1)
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.OfferTask(tasks[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.OfferTask(tasks[0]); err == nil {
		t.Fatal("duplicate task accepted — global dedup broken")
	}
	st := e.Stats()
	if st.Submitted != 1 {
		t.Fatalf("duplicate counted as submitted: %d", st.Submitted)
	}
}

func TestBufferFullDropsAndAllowsReoffer(t *testing.T) {
	e := testEngine(t, Config{
		Shards: 2, StealInterval: -1,
		Stream: stream.Config{Xmax: 1, BufferLimit: 1},
	})
	workers, tasks := genWorkload(11, 2, 8)
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	var full *core.Task
	for _, task := range tasks {
		if _, err := e.OfferTask(task); err != nil {
			if !errors.Is(err, stream.ErrBufferFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			full = task
			break
		}
	}
	if full == nil {
		t.Fatal("2 slots + 2 buffer spaces never filled over 8 offers")
	}
	st := e.Stats()
	if !st.Conserved() {
		t.Fatalf("conservation violated after drop: %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatal("drop not counted")
	}
	// A dropped task must be re-offerable once capacity frees (the
	// duplicate filter forgets it, as in the bare assigner).
	wid := e.WorkerIDs()[0]
	active, err := e.Active(wid)
	if err != nil || len(active) == 0 {
		t.Fatalf("worker %s has no active task: %v", wid, err)
	}
	if _, err := e.Complete(wid, active[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.OfferTask(full); err != nil {
		t.Fatalf("re-offer after drop: %v", err)
	}
}

func TestCompletePullsFromShardBuffer(t *testing.T) {
	e := testEngine(t, Config{Shards: 2, StealInterval: -1, Stream: stream.Config{Xmax: 1}})
	workers, tasks := genWorkload(5, 2, 6)
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	byWorker := map[string]string{}
	for _, task := range tasks {
		wid, err := e.OfferTask(task)
		if err != nil {
			t.Fatal(err)
		}
		if wid != "" {
			byWorker[wid] = task.ID
		}
	}
	if e.BufferLen() == 0 {
		t.Fatal("expected buffered tasks with 2 slots and 6 offers")
	}
	for wid, tid := range byWorker {
		next, err := e.Complete(wid, tid)
		if err != nil {
			t.Fatal(err)
		}
		// The worker's shard may or may not hold buffered work, but when
		// it does the freed slot must pull.
		sh := e.ShardOf(wid)
		if next == nil && e.Stats().PerShard[sh].Backlog > 0 {
			t.Fatalf("worker %s freed a slot while shard %d had backlog but pulled nothing", wid, sh)
		}
	}
	if !e.Stats().Conserved() {
		t.Fatalf("conservation violated: %+v", e.Stats())
	}
}

func TestRemoveWorkerRequeuesAcrossEngine(t *testing.T) {
	e := testEngine(t, Config{Shards: 2, StealInterval: -1, Stream: stream.Config{Xmax: 2}})
	workers, tasks := genWorkload(9, 4, 8)
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range tasks {
		if _, err := e.OfferTask(task); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Stats()
	victim := workers[0].ID
	if _, err := e.RemoveWorker(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Active(victim); err == nil {
		t.Fatal("removed worker still known")
	}
	after := e.Stats()
	if !after.Conserved() {
		t.Fatalf("conservation violated after removal: %+v", after)
	}
	if after.Workers != before.Workers-1 {
		t.Fatalf("worker count %d after removing one of %d", after.Workers, before.Workers)
	}
}

// TestOneShardDeterminism pins the degenerate case the whole design hangs
// off: with 1 shard the engine is event-for-event identical to the bare
// stream.Assigner — same assignments, same drains, same pulls, same
// errors — for an arbitrary seeded event stream including churn.
func TestOneShardDeterminism(t *testing.T) {
	const seed = 42
	bare := func() *stream.Assigner {
		a, err := stream.NewAssigner(stream.Config{
			Xmax: 3, BufferLimit: 16, Metrics: stream.NewMetrics(obs.NewRegistry()),
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}()
	eng := testEngine(t, Config{
		Shards: 1,
		Stream: stream.Config{Xmax: 3, BufferLimit: 16},
	})

	workers, tasks := genWorkload(seed, 24, 160)
	rng := rand.New(rand.NewSource(seed))
	present := []string{} // workers added to both
	type pair struct{ wid, tid string }
	var activePairs []pair

	step := 0
	check := func(what string, gotE, gotB any, errE, errB error) {
		t.Helper()
		if (errE == nil) != (errB == nil) {
			t.Fatalf("step %d %s: engine err %v vs bare err %v", step, what, errE, errB)
		}
		if fmt.Sprint(gotE) != fmt.Sprint(gotB) {
			t.Fatalf("step %d %s: engine %v vs bare %v", step, what, gotE, gotB)
		}
	}

	wi, ti := 0, 0
	for step = 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 2 && wi < len(workers): // arrive
			w := workers[wi]
			wi++
			gotE, errE := eng.AddWorker(w)
			gotB, errB := bare.AddWorker(w)
			check("AddWorker", taskIDs(gotE), taskIDs(gotB), errE, errB)
			present = append(present, w.ID)
			for _, task := range gotE {
				activePairs = append(activePairs, pair{w.ID, task.ID})
			}
		case op == 2 && len(present) > 1: // depart
			k := rng.Intn(len(present))
			id := present[k]
			gotE, errE := eng.RemoveWorker(id)
			gotB, errB := bare.RemoveWorker(id)
			check("RemoveWorker", taskIDs(gotE), taskIDs(gotB), errE, errB)
			present = append(present[:k], present[k+1:]...)
			kept := activePairs[:0]
			for _, p := range activePairs {
				if p.wid != id {
					kept = append(kept, p)
				}
			}
			activePairs = kept
		case op < 7 && ti < len(tasks): // offer
			task := tasks[ti]
			ti++
			widE, errE := eng.OfferTask(task)
			widB, errB := bare.OfferTask(task)
			check("OfferTask", widE, widB, errE, errB)
			if errE == nil && widE != "" {
				activePairs = append(activePairs, pair{widE, task.ID})
			}
		case len(activePairs) > 0: // complete
			k := rng.Intn(len(activePairs))
			p := activePairs[k]
			activePairs = append(activePairs[:k], activePairs[k+1:]...)
			nextE, errE := eng.Complete(p.wid, p.tid)
			nextB, errB := bare.Complete(p.wid, p.tid)
			check("Complete", taskID(nextE), taskID(nextB), errE, errB)
			if errE == nil && nextE != nil {
				activePairs = append(activePairs, pair{p.wid, nextE.ID})
			}
		}
	}
	if eng.BufferLen() != bare.BufferLen() {
		t.Fatalf("final backlog: engine %d vs bare %d", eng.BufferLen(), bare.BufferLen())
	}
	if o1, o2 := eng.Objective(), bare.Objective(); o1 != o2 {
		t.Fatalf("final objective: engine %g vs bare %g", o1, o2)
	}
}

func taskIDs(tasks []*core.Task) []string {
	out := make([]string, len(tasks))
	for i, t := range tasks {
		out[i] = t.ID
	}
	return out
}

func taskID(t *core.Task) string {
	if t == nil {
		return ""
	}
	return t.ID
}

func TestObjectiveMatchesShardSum(t *testing.T) {
	e := testEngine(t, Config{Shards: 4, StealInterval: -1, Stream: stream.Config{Xmax: 3}})
	workers, tasks := genWorkload(13, 12, 30)
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range tasks {
		if _, err := e.OfferTask(task); err != nil {
			t.Fatal(err)
		}
	}
	if o := e.Objective(); o <= 0 {
		t.Fatalf("objective %g, want > 0 with 30 tasks on 12 workers", o)
	}
}
