package shard

import (
	"strconv"

	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/stream"
)

// Metrics are the engine-level instruments: one set per Engine, all on
// the same registry as the per-shard series so a single scrape shows the
// whole picture.
type Metrics struct {
	// Shards is the configured shard count (constant gauge, handy for
	// dashboards dividing per-shard series).
	Shards *obs.Gauge
	// Submitted/Dropped are the engine's own conservation counters:
	// Submitted counts well-formed OfferTask attempts accepted for
	// routing; Dropped counts offers rejected with ErrBufferFull plus
	// tasks lost on RemoveWorker overflow and steal overflow. Together
	// with the per-shard active/completed/backlog states they satisfy
	// Submitted = Active + Completed + Buffered + Dropped at quiescence.
	Submitted *obs.Counter
	Dropped   *obs.Counter
	// RouteLatency is the scatter-gather routing time per offered task,
	// seconds.
	RouteLatency *obs.Histogram
	// CommitRetries counts commit attempts beyond the first — how often
	// the scoring winner was full by the time the commit arrived (the
	// contention the broadcast fallback exists for).
	CommitRetries *obs.Counter
	// Steals counts rebalance rounds that moved at least one task;
	// StolenTasks the tasks moved; StealBatch the per-round batch sizes.
	Steals      *obs.Counter
	StolenTasks *obs.Counter
	StealBatch  *obs.Histogram
	// Expired counts buffered tasks expired past their deadline by the
	// expiry sweep (ExpireOnce) — part of the conservation law, disjoint
	// from Dropped.
	Expired *obs.Counter
	// ForecastBreaches counts shards whose projected backlog crossed the
	// steal watermark while their actual backlog had not — the proactive
	// rebalances only the demand forecaster sees.
	ForecastBreaches *obs.Counter
}

// NewMetrics registers the engine-level instruments on r (obs.Default()
// when nil).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		r = obs.Default()
	}
	return &Metrics{
		Shards: r.Gauge("hta_shard_count",
			"configured shard count of the sharded streaming engine"),
		Submitted: r.Counter("hta_shard_tasks_submitted_total",
			"well-formed task offers accepted for routing by the sharded engine"),
		Dropped: r.Counter("hta_shard_tasks_dropped_total",
			"tasks lost engine-wide (full buffers on offer, removal overflow, steal overflow)"),
		RouteLatency: r.Histogram("hta_shard_route_seconds",
			"scatter-gather routing latency per offered task", obs.DurationBuckets()),
		CommitRetries: r.Counter("hta_shard_commit_retries_total",
			"commit attempts beyond the scoring winner (contention fallback)"),
		Steals: r.Counter("hta_shard_steals_total",
			"rebalance rounds that moved at least one task"),
		StolenTasks: r.Counter("hta_shard_stolen_tasks_total",
			"tasks migrated between shards by work stealing"),
		StealBatch: r.Histogram("hta_shard_steal_batch_size",
			"tasks moved per successful steal round", obs.SizeBuckets()),
		Expired: r.Counter("hta_shard_tasks_expired_total",
			"buffered tasks expired past their deadline by the expiry sweep"),
		ForecastBreaches: r.Counter("hta_shard_forecast_breaches_total",
			"proactive watermark breaches seen only by the demand forecaster"),
	}
}

// actorMetrics are the per-shard series, labeled shard="K". The wrapped
// stream.Assigner's own instruments (queue depth, delivered, ...) carry
// the same label via stream.NewMetricsLabeled, so every shard is a
// distinct, aggregatable family member — the fix for the shared-gauge
// inconsistency a process with several Assigners otherwise hits.
type actorMetrics struct {
	Mailbox   *obs.Gauge     // current mailbox occupancy
	Free      *obs.Gauge     // free task slots (Xmax·workers − active)
	Batch     *obs.Histogram // messages drained per mailbox batch
	Stolen    *obs.Counter   // tasks this shard donated
	Received  *obs.Counter   // tasks this shard absorbed
	Predicted *obs.Gauge     // forecaster's projected backlog at horizon
}

func newActorMetrics(r *obs.Registry, id int) (*actorMetrics, *stream.Metrics) {
	if r == nil {
		r = obs.Default()
	}
	l := obs.L("shard", strconv.Itoa(id))
	am := &actorMetrics{
		Mailbox: r.Gauge("hta_shard_mailbox_occupancy",
			"messages waiting in the shard actor's mailbox", l),
		Free: r.Gauge("hta_shard_free_capacity",
			"free task slots on the shard (Xmax x workers - active)", l),
		Batch: r.Histogram("hta_shard_mailbox_batch_size",
			"messages drained per mailbox batch by the shard actor", obs.SizeBuckets(), l),
		Stolen: r.Counter("hta_shard_tasks_stolen_total",
			"buffered tasks donated to other shards", l),
		Received: r.Counter("hta_shard_tasks_received_total",
			"buffered tasks absorbed from other shards", l),
		Predicted: r.Gauge("hta_shard_predicted_backlog",
			"projected shard backlog at the forecast horizon", l),
	}
	return am, stream.NewMetricsLabeled(r, l)
}
