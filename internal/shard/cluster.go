package shard

import (
	"errors"
	"sort"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/stream"
)

// Cluster-support surface: the same scatter/commit/buffer primitives the
// stream.Assigner exposes to this engine, lifted one level so a cluster
// router (internal/cluster) can treat a whole node — this engine and all
// its shards — as one ring member. The division of labour mirrors the
// shard protocol exactly:
//
//   - BestGain is the node's scatter answer: the best marginal gain any
//     of its shards can offer, read-only;
//   - TryAssign is the node's commit: place the task on the best local
//     shard with capacity, never buffer, fail cleanly so the router can
//     fall back to another node;
//   - BufferAny is the node's buffer fallback: park the task on the
//     least backlogged local shard.
//
// Deduplication is split the same way it is between engine and assigner:
// the cluster router owns the global filter, while these methods still
// register accepted tasks locally so the node's own OfferTask path stays
// coherent. Accepted tasks count toward this engine's Submitted, so the
// per-node conservation law (submitted = active + completed + buffered +
// dropped) keeps holding when traffic arrives over RPC instead of the
// local API.

// BestGain scores t against every shard's workers (read-only, concurrent
// across shards) and returns the best marginal gain and relevance
// tie-break among workers with free capacity. free is false when every
// worker on every shard is full — the gain values are then meaningless.
func (e *Engine) BestGain(t *core.Task) (gain, rel float64, free bool) {
	release, err := e.begin()
	if err != nil {
		return 0, 0, false
	}
	defer release()
	if t == nil || t.Keywords == nil || t.ID == "" {
		return 0, 0, false
	}
	n := len(e.actors)
	replies := make(chan scoreReply, n)
	for _, a := range e.actors {
		a := a
		a.send(func() {
			g, r, ok := a.asn.BestGain(t)
			replies <- scoreReply{shard: a.id, gain: g, rel: r, ok: ok}
		})
	}
	gain, rel = -1, -1
	for i := 0; i < n; i++ {
		c := <-replies
		if !c.ok {
			continue
		}
		if !free || c.gain > gain+1e-12 || (c.gain > gain-1e-12 && c.rel > rel) {
			gain, rel, free = c.gain, c.rel, true
		}
	}
	return gain, rel, free
}

// TryAssign commits t to the best free worker across this engine's shards
// under the same scatter/commit protocol as OfferTask, but never buffers
// and returns ok=false instead of an error when every shard is full — the
// cluster router will commit to another node or buffer explicitly. On
// success the task is registered in the local duplicate filter and counted
// submitted, so node-local accounting stays conserved.
func (e *Engine) TryAssign(t *core.Task) (wid string, ok bool) {
	release, err := e.begin()
	if err != nil {
		return "", false
	}
	defer release()
	if t == nil || t.Keywords == nil || t.ID == "" {
		return "", false
	}
	start := time.Now()
	defer func() { e.metrics.RouteLatency.Observe(time.Since(start).Seconds()) }()
	if len(e.actors) == 1 {
		e.actors[0].call(func(asn *stream.Assigner) { wid, ok = asn.TryAssign(t) })
		if ok {
			e.noteSubmitted(t.ID)
		}
		return wid, ok
	}
	n := len(e.actors)
	replies := make(chan scoreReply, n)
	for _, a := range e.actors {
		a := a
		a.send(func() {
			g, r, free := a.asn.BestGain(t)
			replies <- scoreReply{shard: a.id, gain: g, rel: r, ok: free}
		})
	}
	scored := make([]scoreReply, 0, n)
	for i := 0; i < n; i++ {
		scored = append(scored, <-replies)
	}
	sort.Slice(scored, func(i, j int) bool {
		a, b := scored[i], scored[j]
		if a.ok != b.ok {
			return a.ok
		}
		if a.ok {
			if a.gain > b.gain+1e-12 {
				return true
			}
			if b.gain > a.gain+1e-12 {
				return false
			}
			if a.rel != b.rel {
				return a.rel > b.rel
			}
		}
		return a.shard < b.shard
	})
	for _, c := range scored {
		var committed bool
		e.actors[c.shard].call(func(asn *stream.Assigner) { wid, committed = asn.TryAssign(t) })
		if committed {
			e.noteSubmitted(t.ID)
			return wid, true
		}
	}
	return "", false
}

// BufferAny parks t on the least backlogged shard's buffer without
// attempting assignment — the buffer half of a cluster routing decision
// that picked this node as the least loaded. Returns stream.ErrBufferFull
// when every local buffer is at its limit. Accepted tasks are registered
// and counted submitted, like TryAssign.
func (e *Engine) BufferAny(t *core.Task) error {
	release, err := e.begin()
	if err != nil {
		return err
	}
	defer release()
	if t == nil || t.Keywords == nil || t.ID == "" {
		return errors.New("shard: nil task or keywords")
	}
	if err := e.bufferAnywhere(t); err != nil {
		return err
	}
	e.noteSubmitted(t.ID)
	return nil
}

// noteSubmitted records a task accepted through the cluster-support
// surface in the engine-wide counters and duplicate filter.
func (e *Engine) noteSubmitted(id string) {
	e.submitted.Add(1)
	e.metrics.Submitted.Inc()
	if len(e.actors) > 1 {
		e.markSeen(id)
	}
}

// HashKey exposes the ring's key hash (fmix64-finished FNV-1a) so the
// cluster membership ring partitions by exactly the same function, with
// the same short-key banding fix.
func HashKey(s string) uint64 { return fnv1a(s) }
