// Package shard is the sharded streaming assignment engine: N independent
// stream.Assigner shards, each owned by one actor goroutine behind a
// bounded mailbox, with workers partitioned across shards by a
// consistent-hash ring and tasks routed by scatter-gather marginal-gain
// scoring.
//
// The single-Assigner deployment serializes every event on one mutex — a
// hard ceiling once "heavy traffic from millions of users" is the target.
// Online assignment shards naturally across workers when each decision is
// a per-worker marginal-gain pick (Assadi et al., Online Task Assignment
// in Crowdsourcing Markets): the greedy choice argmax_q Δ(q, k) over all
// workers equals the max over per-shard maxima, so partitioning workers
// preserves the objective exactly — only the *interleaving* of concurrent
// events can differ from the serial order, never the per-event rule. With
// one shard the engine routes directly through the one Assigner, making
// it event-for-event identical to the bare stream.Assigner (tested).
//
// Protocol per arriving task (OfferTask):
//
//  1. scatter: every shard scores its best Δ(q, k) among workers with
//     free capacity (read-only, concurrent across shards);
//  2. commit: try the winner; under contention the winner may have filled
//     between score and commit, so fall back to the remaining scored
//     shards in rank order, then broadcast to the shards that reported
//     full (they may have freed);
//  3. buffer: if no shard has a free slot, park the task in the least
//     backlogged shard's buffer; every buffer full → ErrBufferFull.
//
// Dynamic worker availability (arrivals/departures mid-stream, cf.
// DATA-WA) skews load between partitions, so a rebalancer steals bounded
// batches of *buffered* tasks from shards whose backlog exceeds a
// watermark into shards with free capacity. Only buffered tasks move —
// active assignments never migrate, so worker→shard routing stays pure
// ring lookup.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/schedule"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/trace"
)

// ErrClosed is returned by every operation after Close.
var ErrClosed = errors.New("shard: engine closed")

// Config parameterizes an Engine.
type Config struct {
	// Shards is the number of partitions (>= 1). With 1 shard the engine
	// degenerates to a mailbox-wrapped stream.Assigner and work stealing
	// is disabled.
	Shards int
	// VirtualNodes is the ring points per shard (default 64).
	VirtualNodes int
	// Mailbox bounds each shard actor's mailbox; a full mailbox blocks
	// the sender (backpressure, never drops). Default 128.
	Mailbox int
	// Stream is the per-shard assigner template. BufferLimit is per
	// shard, so total buffer capacity is Shards·BufferLimit; divide a
	// fixed global budget by Shards for capacity-fair comparisons. The
	// Metrics field is ignored — each shard gets its own shard="K"
	// labeled instrument set on Registry.
	Stream stream.Config
	// StealWatermark is the per-shard backlog above which the rebalancer
	// sheds buffered tasks. Default BufferLimit/4 (min 8).
	StealWatermark int
	// StealBatch bounds tasks moved per shard pair per rebalance round.
	// Default 32.
	StealBatch int
	// StealInterval is the rebalancer period. 0 defaults to 20ms;
	// negative disables stealing (it is always disabled with 1 shard).
	StealInterval time.Duration
	// Predictive turns the reactive watermark rebalancer into a
	// forecast-driven one: each shard carries a demand forecaster
	// (internal/schedule — EWMA arrival/completion rates with a
	// burstiness guard) ticked once per steal round, and donors are
	// chosen on the *projected* backlog ForecastHorizon rounds ahead, so
	// bursty shards shed work before the watermark actually breaches.
	// Off by default; the reactive trigger is then byte-for-byte the PR 5
	// behaviour.
	Predictive bool
	// Forecast tunes the per-shard forecasters (zero value = defaults).
	// Only read when Predictive is set.
	Forecast schedule.ForecastConfig
	// ForecastHorizon is how many steal rounds ahead the projection
	// looks. Default 3. Only read when Predictive is set.
	ForecastHorizon float64
	// ExpireInterval is the period of the deadline-expiry sweep that
	// removes buffered tasks past their deadline (journaled and counted,
	// never silent). 0 disables the loop — ExpireOnce remains available
	// for explicit/deterministic driving.
	ExpireInterval time.Duration
	// LearnWindows attaches a schedule.WindowTracker to the engine:
	// AddWorker/RemoveWorker feed it arrival/departure observations, and
	// each worker's estimated departure is pushed into its shard so
	// deadline-aware routing (Stream.DeadlineAware) can avoid pinning
	// imminent work to a worker about to leave. Declared windows
	// (SetWindow) always override the learned estimate.
	LearnWindows bool
	// Windows tunes the learned-window tracker (zero value = defaults).
	// Only read when LearnWindows is set.
	Windows schedule.WindowConfig
	// Registry receives the engine and per-shard instruments. Defaults
	// to obs.Default().
	Registry *obs.Registry
	// Tracer records steal-round root spans (routing spans join the
	// caller's request trace instead). Defaults to trace.Default().
	Tracer *trace.Recorder
	// Journal receives operational events (watermark breaches, steal
	// rounds). Defaults to ops.Default().
	Journal *ops.Journal
}

// Engine is the sharded streaming assignment engine. All methods are safe
// for concurrent use.
type Engine struct {
	cfg     Config
	ring    *Ring
	actors  []*actor
	metrics *Metrics
	tracer  *trace.Recorder
	journal *ops.Journal

	// live guards mailbox liveness: operations hold the read side while
	// they touch mailboxes; Close takes the write side, so no send can
	// race a mailbox close.
	live   sync.RWMutex
	closed bool

	// seen is the global duplicate-task filter: a task lives on exactly
	// one shard, so per-shard filters cannot see cross-shard duplicates.
	seenMu sync.Mutex
	seen   map[string]struct{}

	// offerDropped counts offers rejected engine-wide with ErrBufferFull;
	// per-shard removal/steal overflow lives on the actors. base* carry
	// counters restored from a snapshot.
	submitted     atomic.Int64
	offerDropped  atomic.Int64
	baseSubmitted int64
	baseCompleted int64
	baseDropped   int64
	baseExpired   int64

	// forecast holds one demand forecaster per shard (nil unless
	// Predictive); windows is the learned availability tracker (nil
	// unless LearnWindows); now is the clock both share with the
	// assigners.
	forecast []*schedule.Forecaster
	windows  *schedule.WindowTracker
	now      func() int64

	// snapMu serializes quiesce barriers (two overlapping barriers would
	// deadlock the actor pool).
	snapMu sync.Mutex

	// stealMu guards stealScratch, the reusable transfer slice steal
	// rounds move task batches in (see executeSteal).
	stealMu      sync.Mutex
	stealScratch []*core.Task

	stopSteal  chan struct{}
	stealDone  chan struct{}
	stopExpire chan struct{}
	expireDone chan struct{}
}

// New validates the configuration and starts the shard actors (and the
// rebalancer when Shards > 1 and stealing is enabled).
func New(cfg Config) (*Engine, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards = %d, must be >= 1", cfg.Shards)
	}
	if cfg.Mailbox == 0 {
		cfg.Mailbox = 128
	}
	if cfg.Mailbox < 1 {
		return nil, fmt.Errorf("shard: Mailbox = %d", cfg.Mailbox)
	}
	if cfg.Stream.BufferLimit == 0 {
		cfg.Stream.BufferLimit = 1024
	}
	if cfg.StealWatermark == 0 {
		cfg.StealWatermark = cfg.Stream.BufferLimit / 4
		if cfg.StealWatermark < 8 {
			cfg.StealWatermark = 8
		}
	}
	if cfg.StealBatch == 0 {
		cfg.StealBatch = 32
	}
	if cfg.StealInterval == 0 {
		cfg.StealInterval = 20 * time.Millisecond
	}
	if cfg.ForecastHorizon == 0 {
		cfg.ForecastHorizon = 3
	}
	if cfg.ForecastHorizon < 0 {
		return nil, fmt.Errorf("shard: ForecastHorizon = %g", cfg.ForecastHorizon)
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Default()
	}
	if cfg.Journal == nil {
		cfg.Journal = ops.Default()
	}
	ring, err := NewRing(cfg.Shards, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		ring:    ring,
		metrics: NewMetrics(cfg.Registry),
		tracer:  cfg.Tracer,
		journal: cfg.Journal,
		seen:    make(map[string]struct{}),
	}
	e.metrics.Shards.Set(float64(cfg.Shards))
	e.now = cfg.Stream.Now
	if e.now == nil {
		e.now = func() int64 { return time.Now().UnixNano() }
	}
	if cfg.Predictive {
		e.forecast = make([]*schedule.Forecaster, cfg.Shards)
		for i := range e.forecast {
			e.forecast[i] = schedule.NewForecaster(cfg.Forecast)
		}
	}
	if cfg.LearnWindows {
		e.windows = schedule.NewWindowTracker(cfg.Windows)
	}
	e.actors = make([]*actor, cfg.Shards)
	for i := range e.actors {
		scfg := cfg.Stream
		am, sm := newActorMetrics(cfg.Registry, i)
		scfg.Metrics = sm
		asn, err := stream.NewAssigner(scfg)
		if err != nil {
			for _, a := range e.actors[:i] {
				a.stop()
			}
			return nil, err
		}
		e.actors[i] = newActor(i, asn, cfg.Mailbox, am)
	}
	if cfg.Shards > 1 && cfg.StealInterval > 0 {
		e.stopSteal = make(chan struct{})
		e.stealDone = make(chan struct{})
		go e.stealLoop()
	}
	if cfg.ExpireInterval > 0 {
		e.stopExpire = make(chan struct{})
		e.expireDone = make(chan struct{})
		go e.expireLoop()
	}
	return e, nil
}

// Shards returns the configured shard count.
func (e *Engine) Shards() int { return len(e.actors) }

// ShardOf returns the shard index owning the worker ID (pure ring
// lookup; the worker need not be registered).
func (e *Engine) ShardOf(workerID string) int { return e.ring.Lookup(workerID) }

// Close stops the rebalancer and the shard actors, draining their
// mailboxes. Idempotent; operations after Close return ErrClosed.
func (e *Engine) Close() {
	e.live.Lock()
	if e.closed {
		e.live.Unlock()
		return
	}
	e.closed = true
	e.live.Unlock()
	// The rebalancer checks closed under the read lock before posting,
	// so stopping it after flipping the flag is safe.
	if e.stopSteal != nil {
		close(e.stopSteal)
		<-e.stealDone
	}
	if e.stopExpire != nil {
		close(e.stopExpire)
		<-e.expireDone
	}
	for _, a := range e.actors {
		a.stop()
	}
}

// begin takes the liveness read-lock; the returned release must be called
// when the operation's mailbox traffic is done.
func (e *Engine) begin() (release func(), err error) {
	e.live.RLock()
	if e.closed {
		e.live.RUnlock()
		return nil, ErrClosed
	}
	return e.live.RUnlock, nil
}

// AddWorker registers the worker on its ring shard and drains that
// shard's buffer into its free capacity (best marginal gain first).
// Returns the drained tasks.
func (e *Engine) AddWorker(w *core.Worker) ([]*core.Task, error) {
	return e.AddWorkerCtx(context.Background(), w)
}

// AddWorkerCtx is AddWorker with trace annotation.
func (e *Engine) AddWorkerCtx(ctx context.Context, w *core.Worker) ([]*core.Task, error) {
	release, err := e.begin()
	if err != nil {
		return nil, err
	}
	defer release()
	if w == nil || w.ID == "" {
		return nil, errors.New("shard: nil worker or empty ID")
	}
	a := e.actors[e.ring.Lookup(w.ID)]
	var assigned []*core.Task
	a.call(func(asn *stream.Assigner) {
		assigned, err = asn.AddWorker(w)
		if err == nil && e.windows != nil {
			// Learned-window hook: record the arrival and, once the
			// tracker has seen enough of this worker's sessions, push the
			// estimated departure into the shard so deadline-aware
			// routing can steer imminent work away.
			e.windows.Arrive(w.ID, e.now())
			if est := e.windows.DepartureEstimate(w.ID); est > 0 {
				_ = asn.SetWindow(w.ID, est)
			}
		}
	})
	if err == nil {
		trace.Event(ctx, "shard.add_worker",
			trace.Str("worker", w.ID), trace.Int("shard", a.id),
			trace.Int("drained", len(assigned)))
	}
	return assigned, err
}

// RemoveWorker deregisters the worker; its unfinished tasks return to its
// shard's buffer, overflow is dropped and returned.
func (e *Engine) RemoveWorker(id string) ([]*core.Task, error) {
	return e.RemoveWorkerCtx(context.Background(), id)
}

// RemoveWorkerCtx is RemoveWorker with trace annotation.
func (e *Engine) RemoveWorkerCtx(ctx context.Context, id string) ([]*core.Task, error) {
	release, err := e.begin()
	if err != nil {
		return nil, err
	}
	defer release()
	a := e.actors[e.ring.Lookup(id)]
	var dropped []*core.Task
	a.call(func(asn *stream.Assigner) { dropped, err = asn.RemoveWorker(id) })
	if err == nil && e.windows != nil {
		e.windows.Depart(id, e.now())
	}
	if err == nil {
		if n := len(dropped); n > 0 {
			a.dropped.Add(int64(n))
			e.metrics.Dropped.Add(float64(n))
		}
		trace.Event(ctx, "shard.remove_worker",
			trace.Str("worker", id), trace.Int("shard", a.id),
			trace.Int("dropped", len(dropped)))
	}
	return dropped, err
}

// OfferTask routes an arriving task to the best worker across all shards,
// or into a buffer. Returns the assigned worker's ID ("" if buffered) —
// the sharded analogue of stream.Assigner.OfferTask.
func (e *Engine) OfferTask(t *core.Task) (string, error) {
	return e.OfferTaskCtx(context.Background(), t)
}

// OfferTaskCtx is OfferTask under the caller's trace: the scatter-gather
// decision is recorded as a "shard.route" span with per-attempt
// "shard.commit" events.
func (e *Engine) OfferTaskCtx(ctx context.Context, t *core.Task) (string, error) {
	release, err := e.begin()
	if err != nil {
		return "", err
	}
	defer release()
	if t == nil || t.Keywords == nil {
		return "", errors.New("shard: nil task or keywords")
	}
	if t.ID == "" {
		return "", errors.New("shard: task with empty ID")
	}

	// Single shard: route straight through the one assigner so behaviour
	// (selection, dedup, buffering, metrics) is exactly the bare
	// stream.Assigner's — the determinism test pins this.
	if len(e.actors) == 1 {
		var wid string
		start := time.Now()
		e.actors[0].call(func(asn *stream.Assigner) { wid, err = asn.OfferTask(t) })
		e.metrics.RouteLatency.Observe(time.Since(start).Seconds())
		switch {
		case err == nil:
			e.submitted.Add(1)
			e.metrics.Submitted.Inc()
			if e.forecast != nil {
				e.forecast[0].RecordArrivals(1)
			}
		case errors.Is(err, stream.ErrBufferFull):
			e.submitted.Add(1)
			e.metrics.Submitted.Inc()
			e.offerDropped.Add(1)
			e.metrics.Dropped.Inc()
		}
		return wid, err
	}

	// Global dedup: a task lives on exactly one shard, so the duplicate
	// filter must be engine-wide.
	e.seenMu.Lock()
	if _, dup := e.seen[t.ID]; dup {
		e.seenMu.Unlock()
		return "", fmt.Errorf("shard: duplicate task %q", t.ID)
	}
	e.seen[t.ID] = struct{}{}
	e.seenMu.Unlock()
	e.submitted.Add(1)
	e.metrics.Submitted.Inc()

	ctx, span := trace.Start(ctx, "shard.route", trace.Str("task", t.ID))
	start := time.Now()
	wid, shardID, attempts, buffered, err := e.route(ctx, t)
	e.metrics.RouteLatency.Observe(time.Since(start).Seconds())
	span.SetAttrs(trace.Int("shard", shardID), trace.Int("attempts", attempts),
		trace.Bool("buffered", buffered), trace.Str("worker", wid))
	span.End()
	if err == nil && e.forecast != nil && shardID >= 0 {
		e.forecast[shardID].RecordArrivals(1)
	}
	if errors.Is(err, stream.ErrBufferFull) {
		// Mirror the bare assigner: a rejected task may be legitimately
		// re-offered later, so it leaves the duplicate filter.
		e.seenMu.Lock()
		delete(e.seen, t.ID)
		e.seenMu.Unlock()
		e.offerDropped.Add(1)
		e.metrics.Dropped.Inc()
	}
	return wid, err
}

// scoreReply is one shard's answer to the scatter phase.
type scoreReply struct {
	shard int
	gain  float64
	rel   float64
	ok    bool
}

// route implements the scatter / commit / buffer protocol from the
// package comment. Caller holds the liveness read-lock.
func (e *Engine) route(ctx context.Context, t *core.Task) (wid string, shardID, attempts int, buffered bool, err error) {
	n := len(e.actors)
	replies := make(chan scoreReply, n) // buffered: actors never block on reply
	for _, a := range e.actors {
		a := a
		a.send(func() {
			g, r, ok := a.asn.BestGain(t)
			replies <- scoreReply{shard: a.id, gain: g, rel: r, ok: ok}
		})
	}
	scored := make([]scoreReply, 0, n)
	for i := 0; i < n; i++ {
		scored = append(scored, <-replies)
	}
	// Rank: shards with capacity first, by marginal gain then relevance
	// (same epsilon tie-break as the per-worker rule), then shard index
	// for determinism; full shards follow in index order — they are the
	// broadcast fallback, tried in case capacity freed since scoring.
	sort.Slice(scored, func(i, j int) bool {
		a, b := scored[i], scored[j]
		if a.ok != b.ok {
			return a.ok
		}
		if a.ok {
			if a.gain > b.gain+1e-12 {
				return true
			}
			if b.gain > a.gain+1e-12 {
				return false
			}
			if a.rel != b.rel {
				return a.rel > b.rel
			}
		}
		return a.shard < b.shard
	})
	for _, c := range scored {
		attempts++
		a := e.actors[c.shard]
		var committed bool
		a.call(func(asn *stream.Assigner) { wid, committed = asn.TryAssign(t) })
		trace.Event(ctx, "shard.commit", trace.Int("shard", c.shard),
			trace.Int("attempt", attempts), trace.Bool("ok", committed),
			trace.Bool("scored_free", c.ok))
		if committed {
			if attempts > 1 {
				e.metrics.CommitRetries.Add(float64(attempts - 1))
			}
			return wid, c.shard, attempts, false, nil
		}
		if c.ok {
			// The scoring winner filled up between score and commit.
			e.metrics.CommitRetries.Inc()
		}
	}
	// No free slot anywhere: buffer on the least backlogged shard.
	byBacklog := make([]int, n)
	for i := range byBacklog {
		byBacklog[i] = i
	}
	sort.Slice(byBacklog, func(i, j int) bool {
		bi := e.actors[byBacklog[i]].asn.Backlog()
		bj := e.actors[byBacklog[j]].asn.Backlog()
		if bi != bj {
			return bi < bj
		}
		return byBacklog[i] < byBacklog[j]
	})
	for _, id := range byBacklog {
		var berr error
		e.actors[id].call(func(asn *stream.Assigner) { berr = asn.BufferTask(t) })
		if berr == nil {
			return "", id, attempts, true, nil
		}
	}
	return "", -1, attempts, false, stream.ErrBufferFull
}

// Complete marks the task finished on the worker's shard; the freed slot
// pulls the best buffered task, which is returned (nil when the shard's
// buffer is empty).
func (e *Engine) Complete(workerID, taskID string) (*core.Task, error) {
	return e.CompleteCtx(context.Background(), workerID, taskID)
}

// CompleteCtx is Complete with trace annotation.
func (e *Engine) CompleteCtx(ctx context.Context, workerID, taskID string) (*core.Task, error) {
	release, err := e.begin()
	if err != nil {
		return nil, err
	}
	defer release()
	a := e.actors[e.ring.Lookup(workerID)]
	var next *core.Task
	a.call(func(asn *stream.Assigner) { next, err = asn.Complete(workerID, taskID) })
	if err == nil {
		a.completed.Add(1)
		if e.forecast != nil {
			e.forecast[a.id].RecordCompletions(1)
		}
		pulled := ""
		if next != nil {
			pulled = next.ID
		}
		trace.Event(ctx, "shard.complete",
			trace.Str("worker", workerID), trace.Str("task", taskID),
			trace.Int("shard", a.id), trace.Str("pulled", pulled))
	}
	return next, err
}

// Active returns the worker's assigned task IDs.
func (e *Engine) Active(workerID string) ([]string, error) {
	release, err := e.begin()
	if err != nil {
		return nil, err
	}
	defer release()
	var out []string
	e.actors[e.ring.Lookup(workerID)].call(func(asn *stream.Assigner) {
		out, err = asn.Active(workerID)
	})
	return out, err
}

// ActiveTasks returns the worker's assigned tasks.
func (e *Engine) ActiveTasks(workerID string) ([]*core.Task, error) {
	release, err := e.begin()
	if err != nil {
		return nil, err
	}
	defer release()
	var out []*core.Task
	e.actors[e.ring.Lookup(workerID)].call(func(asn *stream.Assigner) {
		out, err = asn.ActiveTasks(workerID)
	})
	return out, err
}

// Completed returns how many tasks the worker finished.
func (e *Engine) Completed(workerID string) (int, error) {
	release, err := e.begin()
	if err != nil {
		return 0, err
	}
	defer release()
	var n int
	e.actors[e.ring.Lookup(workerID)].call(func(asn *stream.Assigner) {
		n, err = asn.Completed(workerID)
	})
	return n, err
}

// Trust returns the worker's trust multiplier on its owning shard.
func (e *Engine) Trust(workerID string) (float64, error) {
	release, err := e.begin()
	if err != nil {
		return 0, err
	}
	defer release()
	var v float64
	e.actors[e.ring.Lookup(workerID)].call(func(asn *stream.Assigner) {
		v, err = asn.Trust(workerID)
	})
	return v, err
}

// SetTrust updates the worker's trust multiplier on its owning shard
// (stream.Assigner.SetTrust semantics: 0 quarantines under
// Config.Stream.WithTrust; lifting a quarantine drains that shard's
// buffer into the worker and returns the tasks assigned).
func (e *Engine) SetTrust(workerID string, trust float64) ([]*core.Task, error) {
	release, err := e.begin()
	if err != nil {
		return nil, err
	}
	defer release()
	var drained []*core.Task
	e.actors[e.ring.Lookup(workerID)].call(func(asn *stream.Assigner) {
		drained, err = asn.SetTrust(workerID, trust)
	})
	return drained, err
}

// SetWindow records the worker's declared availability-window end on its
// owning shard (0 clears it). When the engine learns windows
// (Config.LearnWindows) the declaration also overrides the tracker's
// estimate until the worker next departs.
func (e *Engine) SetWindow(workerID string, until int64) error {
	release, err := e.begin()
	if err != nil {
		return err
	}
	defer release()
	e.actors[e.ring.Lookup(workerID)].call(func(asn *stream.Assigner) {
		err = asn.SetWindow(workerID, until)
	})
	if err == nil && e.windows != nil {
		e.windows.Declare(workerID, until)
	}
	return err
}

// Window returns the worker's recorded availability-window end (0 =
// unknown).
func (e *Engine) Window(workerID string) (int64, error) {
	release, err := e.begin()
	if err != nil {
		return 0, err
	}
	defer release()
	var until int64
	e.actors[e.ring.Lookup(workerID)].call(func(asn *stream.Assigner) {
		until, err = asn.Window(workerID)
	})
	return until, err
}

// Worker returns the registered worker record.
func (e *Engine) Worker(workerID string) (*core.Worker, error) {
	release, err := e.begin()
	if err != nil {
		return nil, err
	}
	defer release()
	var w *core.Worker
	e.actors[e.ring.Lookup(workerID)].call(func(asn *stream.Assigner) {
		w, err = asn.Worker(workerID)
	})
	return w, err
}

// BufferLen returns the total buffered backlog across shards (atomic
// peeks; exact at quiescence).
func (e *Engine) BufferLen() int {
	n := 0
	for _, a := range e.actors {
		n += a.asn.Backlog()
	}
	return n
}

// FreeCapacity returns the total free task slots across shards.
func (e *Engine) FreeCapacity() int {
	n := 0
	for _, a := range e.actors {
		n += a.asn.FreeCapacity()
	}
	return n
}

// Objective returns the global streaming objective — the sum of every
// shard's total motivation over active sets. Scatter-gathered; exact at
// quiescence.
func (e *Engine) Objective() float64 {
	release, err := e.begin()
	if err != nil {
		return 0
	}
	defer release()
	type r struct{ v float64 }
	ch := make(chan r, len(e.actors))
	for _, a := range e.actors {
		a := a
		a.send(func() { ch <- r{a.asn.Objective()} })
	}
	var total float64
	for range e.actors {
		total += (<-ch).v
	}
	return total
}

// ShardStats is one shard's load picture. Predicted is the forecaster's
// backlog projection ForecastHorizon steal rounds ahead (equal to Backlog
// when the engine is not predictive or the forecaster is cold).
type ShardStats struct {
	Shard     int     `json:"shard"`
	Workers   int     `json:"workers"`
	Active    int     `json:"active"`
	Backlog   int     `json:"backlog"`
	FreeSlots int     `json:"free_slots"`
	Completed int64   `json:"completed"`
	Dropped   int64   `json:"dropped"`
	Expired   int64   `json:"expired,omitempty"`
	Predicted float64 `json:"predicted,omitempty"`
}

// Stats is the engine-wide accounting. At quiescence the conservation
// invariant holds exactly: Submitted = Active + Completed + Buffered +
// Dropped + Expired (every submitted task is in exactly one of those
// states).
type Stats struct {
	Shards    int          `json:"shards"`
	Workers   int          `json:"workers"`
	Active    int          `json:"active"`
	Completed int64        `json:"completed"`
	Buffered  int          `json:"buffered"`
	Dropped   int64        `json:"dropped"`
	Expired   int64        `json:"expired"`
	Submitted int64        `json:"submitted"`
	PerShard  []ShardStats `json:"per_shard"`
}

// Conserved reports whether the global task-flow conservation law holds.
func (s Stats) Conserved() bool {
	return s.Submitted == int64(s.Active)+s.Completed+int64(s.Buffered)+s.Dropped+s.Expired
}

// Stats gathers the per-shard states and engine counters. Exact at
// quiescence; under concurrent traffic each shard's numbers are a
// consistent per-shard cut but the cross-shard sum may be mid-flight.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.actors)}
	release, err := e.begin()
	if err != nil {
		return st
	}
	defer release()
	ch := make(chan ShardStats, len(e.actors))
	for _, a := range e.actors {
		a := a
		a.send(func() {
			s := ShardStats{
				Shard:     a.id,
				Workers:   a.asn.NumWorkers(),
				Active:    a.asn.ActiveCount(),
				Backlog:   a.asn.BufferLen(),
				FreeSlots: a.asn.FreeCapacity(),
				Completed: a.completed.Load(),
				Dropped:   a.dropped.Load(),
				Expired:   a.expired.Load(),
			}
			if e.forecast != nil {
				s.Predicted = e.forecast[a.id].PredictedBacklog(s.Backlog, e.cfg.ForecastHorizon)
			}
			ch <- s
		})
	}
	st.PerShard = make([]ShardStats, 0, len(e.actors))
	for range e.actors {
		st.PerShard = append(st.PerShard, <-ch)
	}
	sort.Slice(st.PerShard, func(i, j int) bool { return st.PerShard[i].Shard < st.PerShard[j].Shard })
	for _, s := range st.PerShard {
		st.Workers += s.Workers
		st.Active += s.Active
		st.Completed += s.Completed
		st.Buffered += s.Backlog
		st.Dropped += s.Dropped
		st.Expired += s.Expired
	}
	st.Completed += e.baseCompleted
	st.Dropped += e.offerDropped.Load() + e.baseDropped
	st.Expired += e.baseExpired
	st.Submitted = e.submitted.Load() + e.baseSubmitted
	return st
}

// WorkerIDs returns all registered worker IDs, grouped by shard in shard
// order (arrival order within a shard).
func (e *Engine) WorkerIDs() []string {
	release, err := e.begin()
	if err != nil {
		return nil
	}
	defer release()
	type r struct {
		shard int
		ids   []string
	}
	ch := make(chan r, len(e.actors))
	for _, a := range e.actors {
		a := a
		a.send(func() { ch <- r{a.id, a.asn.WorkerIDs()} })
	}
	byShard := make([][]string, len(e.actors))
	for range e.actors {
		got := <-ch
		byShard[got.shard] = got.ids
	}
	var out []string
	for _, ids := range byShard {
		out = append(out, ids...)
	}
	return out
}
