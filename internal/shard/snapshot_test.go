package shard

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/stream"
)

// populate drives the engine into a mixed state: full workers, buffered
// backlog, completions, one departure. Returns the engine for chaining.
func populatedEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	e := testEngine(t, Config{
		Shards: shards, StealInterval: -1,
		Stream: stream.Config{Xmax: 2, BufferLimit: 16},
	})
	workers, tasks := genWorkload(17, 8, 30)
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range tasks {
		if _, err := e.OfferTask(task); err != nil {
			t.Fatal(err)
		}
	}
	// Complete a task on each of three workers so done counters are
	// non-zero and the buffer has been pulled from.
	for _, wid := range e.WorkerIDs()[:3] {
		active, err := e.Active(wid)
		if err != nil || len(active) == 0 {
			continue
		}
		if _, err := e.Complete(wid, active[0]); err != nil {
			t.Fatal(err)
		}
	}
	// One departure: requeues its active set.
	if _, err := e.RemoveWorker(workers[7].ID); err != nil {
		t.Fatal(err)
	}
	return e
}

// workerView flattens per-worker state for comparison across a
// snapshot/restore cycle.
func workerView(t *testing.T, e *Engine) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, wid := range e.WorkerIDs() {
		active, err := e.Active(wid)
		if err != nil {
			t.Fatal(err)
		}
		done, err := e.Completed(wid)
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(active)
		out[wid] = fmt.Sprintf("%s|%d", strings.Join(active, ","), done)
	}
	return out
}

func sameStats(a, b Stats) bool {
	return a.Submitted == b.Submitted && a.Completed == b.Completed &&
		a.Active == b.Active && a.Buffered == b.Buffered && a.Dropped == b.Dropped
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	e := populatedEngine(t, 3)
	before := e.Stats()
	if !before.Conserved() {
		t.Fatalf("pre-snapshot state not conserved: %+v", before)
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	r, err := Restore(bytes.NewReader(buf.Bytes()), Config{
		Shards: 3, StealInterval: -1, Registry: obs.NewRegistry(),
		Stream: stream.Config{Xmax: 2, BufferLimit: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	after := r.Stats()
	if !after.Conserved() {
		t.Fatalf("restored state not conserved: %+v", after)
	}
	if !sameStats(before, after) {
		t.Fatalf("stats changed across restore:\n before %+v\n after  %+v", before, after)
	}
	if bw, aw := workerView(t, e), workerView(t, r); len(bw) != len(aw) {
		t.Fatalf("worker count changed: %d → %d", len(bw), len(aw))
	} else {
		for id, view := range bw {
			if aw[id] != view {
				t.Fatalf("worker %s state changed: %q → %q", id, view, aw[id])
			}
		}
	}
	// Same shard count → identical per-shard layout → the float summation
	// order is identical too: objectives must match exactly.
	if bo, ao := e.Objective(), r.Objective(); bo != ao {
		t.Fatalf("objective changed across restore: %g → %g", bo, ao)
	}
	// The restored engine keeps working: offering one more task succeeds.
	_, tasks := genWorkload(99, 0, 1)
	tasks[0].ID = "fresh-after-restore"
	if _, err := r.OfferTask(tasks[0]); err != nil {
		t.Fatalf("restored engine rejects new work: %v", err)
	}
	// And the duplicate filter survived the round trip: re-offering a task
	// some worker still holds must be rejected.
	held, err := r.ActiveTasks(r.WorkerIDs()[0])
	if err != nil || len(held) == 0 {
		t.Fatalf("first restored worker has no active tasks: %v", err)
	}
	if _, err := r.OfferTask(held[0]); err == nil {
		t.Fatal("restored engine accepted a task it already holds")
	}
}

// TestRestoreRepartitions pins the re-sharding path: a snapshot taken at
// one shard count restores at another, workers land on their new ring
// shards, and the global picture (stats, objective, per-worker state) is
// unchanged.
func TestRestoreRepartitions(t *testing.T) {
	e := populatedEngine(t, 3)
	before := e.Stats()
	beforeView := workerView(t, e)
	beforeObj := e.Objective()
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 5} {
		r, err := Restore(bytes.NewReader(buf.Bytes()), Config{
			Shards: shards, StealInterval: -1, Registry: obs.NewRegistry(),
			Stream: stream.Config{Xmax: 2, BufferLimit: 16},
		})
		if err != nil {
			t.Fatalf("restore into %d shards: %v", shards, err)
		}
		after := r.Stats()
		if !after.Conserved() {
			t.Fatalf("%d shards: restored state not conserved: %+v", shards, after)
		}
		if !sameStats(before, after) {
			t.Fatalf("%d shards: stats changed:\n before %+v\n after  %+v", shards, before, after)
		}
		afterView := workerView(t, r)
		for id, view := range beforeView {
			if afterView[id] != view {
				t.Fatalf("%d shards: worker %s state changed: %q → %q", shards, id, view, afterView[id])
			}
		}
		// Different shard count → different float summation order; compare
		// with tolerance.
		if diff := math.Abs(r.Objective() - beforeObj); diff > 1e-9 {
			t.Fatalf("%d shards: objective drifted by %g", shards, diff)
		}
		r.Close()
	}
}

// TestRestoreSmallerBufferDrops: restoring into less total buffer
// capacity than the snapshot held must drop the overflow — counted, so
// conservation still closes.
func TestRestoreSmallerBufferDrops(t *testing.T) {
	e := populatedEngine(t, 3)
	before := e.Stats()
	if before.Buffered < 2 {
		t.Fatalf("fixture has %d buffered tasks; need >= 2", before.Buffered)
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(bytes.NewReader(buf.Bytes()), Config{
		Shards: 1, StealInterval: -1, Registry: obs.NewRegistry(),
		Stream: stream.Config{Xmax: 2, BufferLimit: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	after := r.Stats()
	if !after.Conserved() {
		t.Fatalf("not conserved after lossy restore: %+v", after)
	}
	if after.Buffered != 1 {
		t.Fatalf("buffered %d with BufferLimit 1", after.Buffered)
	}
	wantDropped := before.Dropped + int64(before.Buffered-1)
	if after.Dropped != wantDropped {
		t.Fatalf("dropped %d, want %d (overflow counted)", after.Dropped, wantDropped)
	}
}

func TestRestoreRejectsBadDocuments(t *testing.T) {
	cfg := Config{Shards: 1, Registry: obs.NewRegistry(), Stream: stream.Config{Xmax: 2}}
	if _, err := Restore(strings.NewReader("{"), cfg); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := Restore(strings.NewReader(`{"version":9}`), cfg); err == nil {
		t.Error("unknown version accepted")
	}
	bad := `{"version":1,"shards":1,"submitted":1,"per_shard":[{"shard":0,
	  "workers":[{"id":"w1","alpha":0.5,"beta":0.5,"universe":4,"keywords":[9]}]}]}`
	if _, err := Restore(strings.NewReader(bad), cfg); err == nil {
		t.Error("out-of-universe keyword accepted")
	}
}
