package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/stream"
)

// TestConservationUnderConcurrentChurn is the property test the sharded
// engine's accounting hangs off: with offers, completions, worker churn
// and work stealing all running concurrently, every submitted task ends
// up in exactly one of {active, completed, buffered, dropped} once the
// engine quiesces. Run under -race this also exercises the mailbox
// protocol end to end.
func TestConservationUnderConcurrentChurn(t *testing.T) {
	e := testEngine(t, Config{
		Shards:        4,
		StealInterval: -1, // stolen rounds run on our own goroutine below
		StealBatch:    8,
		Stream:        stream.Config{Xmax: 2, BufferLimit: 32},
	})
	workers, _ := genWorkload(31, 24, 0)
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}

	const offerers, tasksEach = 4, 150
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Offerers: unique task IDs per goroutine; ErrBufferFull is a counted
	// drop, anything else is a bug.
	for g := 0; g < offerers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen, _ := genWorkloadTasks(int64(100+g), tasksEach)
			for i, task := range gen {
				task.ID = fmt.Sprintf("o%d-%04d-%s", g, i, task.ID)
				if _, err := e.OfferTask(task); err != nil && !errors.Is(err, stream.ErrBufferFull) {
					t.Errorf("offerer %d: %v", g, err)
					return
				}
			}
		}(g)
	}

	// Completers: race each other and the offerers; stale reads surface as
	// "unknown worker" / "not active" errors, which are expected and must
	// not perturb the accounting. They run until the producers are done
	// (their own WaitGroup, signalled via stop).
	var pollers sync.WaitGroup
	for c := 0; c < 2; c++ {
		pollers.Add(1)
		go func(c int) {
			defer pollers.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ids := e.WorkerIDs()
				if len(ids) == 0 {
					continue
				}
				wid := ids[rng.Intn(len(ids))]
				active, err := e.Active(wid)
				if err != nil || len(active) == 0 {
					continue
				}
				_, _ = e.Complete(wid, active[rng.Intn(len(active))])
			}
		}(c)
	}

	// Churner: the only goroutine that adds/removes, so it needs no
	// coordination; removal requeues active tasks, overflow is dropped.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		out := map[string]*core.Worker{}
		for i := 0; i < 200; i++ {
			if len(out) < 6 && rng.Intn(2) == 0 {
				w := workers[rng.Intn(len(workers))]
				if _, gone := out[w.ID]; !gone {
					if _, err := e.RemoveWorker(w.ID); err == nil {
						out[w.ID] = w
					}
				}
			} else {
				for id, w := range out {
					if _, err := e.AddWorker(w); err != nil {
						t.Errorf("re-add %s: %v", id, err)
					}
					delete(out, id)
					break
				}
			}
		}
		for _, w := range out {
			if _, err := e.AddWorker(w); err != nil {
				t.Errorf("final re-add %s: %v", w.ID, err)
			}
		}
	}()

	// Stealer: explicit rounds instead of the ticker so the test controls
	// when the last round finishes (a mid-flight steal holds tasks outside
	// any shard's accounting).
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.StealOnce()
			}
		}
	}()

	wg.Wait()
	close(stop)
	pollers.Wait()

	st := e.Stats()
	if want := int64(offerers * tasksEach); st.Submitted != want {
		t.Fatalf("submitted %d, want %d", st.Submitted, want)
	}
	if !st.Conserved() {
		t.Fatalf("conservation violated at quiescence: submitted=%d active=%d completed=%d buffered=%d dropped=%d",
			st.Submitted, st.Active, st.Completed, st.Buffered, st.Dropped)
	}
	if st.Completed == 0 {
		t.Fatal("no task completed — completers never ran against live workers")
	}
}

// genWorkloadTasks returns n tasks from a seeded generator (workers ignored).
func genWorkloadTasks(seed int64, n int) ([]*core.Task, error) {
	_, tasks := genWorkload(seed, 0, n)
	return tasks, nil
}

func TestStealOnceMovesBacklogToFreeShard(t *testing.T) {
	e := testEngine(t, Config{
		Shards: 2, StealInterval: -1, StealWatermark: 2, StealBatch: 16,
		Stream: stream.Config{Xmax: 4, BufferLimit: 64},
	})
	workers, tasks := genWorkload(21, 40, 12)
	var recv *core.Worker
	for _, w := range workers {
		if e.ShardOf(w.ID) == 1 {
			recv = w
			break
		}
	}
	if recv == nil {
		t.Fatal("no generated worker hashes to shard 1")
	}
	if _, err := e.AddWorker(recv); err != nil {
		t.Fatal(err)
	}
	// Stuff shard 0's buffer directly (the white-box equivalent of a burst
	// that landed before the shard's workers left), keeping the engine
	// counters in step so conservation stays checkable.
	for _, task := range tasks[:10] {
		e.submitted.Add(1)
		e.markSeen(task.ID)
		var err error
		e.actors[0].call(func(asn *stream.Assigner) { err = asn.BufferTask(task) })
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); !st.Conserved() {
		t.Fatalf("setup not conserved: %+v", st)
	}

	// Backlog 10 > watermark 2; receiver has 4 free slots; batch 16.
	// min(excess=8, free=4, batch=16) = 4 tasks must move and all assign.
	moved := e.StealOnce()
	if moved != 4 {
		t.Fatalf("StealOnce moved %d tasks, want 4 (free-capacity bound)", moved)
	}
	st := e.Stats()
	if !st.Conserved() {
		t.Fatalf("conservation violated after steal: %+v", st)
	}
	if st.PerShard[0].Backlog != 6 {
		t.Fatalf("donor backlog %d after stealing 4 of 10", st.PerShard[0].Backlog)
	}
	active, err := e.Active(recv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != 4 {
		t.Fatalf("receiver holds %d tasks, want its full capacity 4", len(active))
	}

	// Receiver is now full and has no buffer headroom claim: a second
	// round finds no receiver and must be a no-op.
	if again := e.StealOnce(); again != 0 {
		t.Fatalf("second StealOnce moved %d tasks with no free capacity anywhere", again)
	}
}

func TestStealNoOpCases(t *testing.T) {
	// Single shard: stealing is structurally disabled.
	one := testEngine(t, Config{Shards: 1, Stream: stream.Config{Xmax: 2}})
	if n := one.StealOnce(); n != 0 {
		t.Fatalf("1-shard StealOnce moved %d", n)
	}
	// Backlog below watermark: no donor.
	e := testEngine(t, Config{
		Shards: 2, StealInterval: -1, StealWatermark: 8,
		Stream: stream.Config{Xmax: 1, BufferLimit: 64},
	})
	workers, tasks := genWorkload(3, 40, 4)
	var recv *core.Worker
	for _, w := range workers {
		if e.ShardOf(w.ID) == 1 {
			recv = w
			break
		}
	}
	if _, err := e.AddWorker(recv); err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks[:3] {
		e.submitted.Add(1)
		e.markSeen(task.ID)
		e.actors[0].call(func(asn *stream.Assigner) { _ = asn.BufferTask(task) })
	}
	if n := e.StealOnce(); n != 0 {
		t.Fatalf("StealOnce moved %d with backlog 3 under watermark 8", n)
	}
}
