package shard

// Predictive scheduling hooks: the deadline-expiry sweep and the demand
// forecast tick. Both are periodic loops owned by the engine (gated on
// Config.ExpireInterval / Config.Predictive) with exported one-shot forms
// so tests and deterministic replays can drive them explicitly.

import (
	"strconv"
	"strings"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/stream"
)

// expireLoop periodically sweeps all shard buffers for tasks past their
// deadline.
func (e *Engine) expireLoop() {
	defer close(e.expireDone)
	tick := time.NewTicker(e.cfg.ExpireInterval)
	defer tick.Stop()
	for {
		select {
		case <-e.stopExpire:
			return
		case <-tick.C:
			e.ExpireOnce(e.now())
		}
	}
}

// ExpireOnce removes every buffered task whose deadline is at or before
// now, across all shards, and returns how many expired. Each batch is
// journaled (ops.EventExpire, with the task IDs for small batches) and
// counted per shard and engine-wide, so the conservation law
// Submitted = Active + Completed + Buffered + Dropped + Expired keeps
// balancing — an expired task is never a silent drop.
func (e *Engine) ExpireOnce(now int64) int {
	release, err := e.begin()
	if err != nil {
		return 0
	}
	defer release()
	total := 0
	for _, a := range e.actors {
		var exp []*core.Task
		a.call(func(asn *stream.Assigner) { exp = asn.ExpireDue(now) })
		if len(exp) == 0 {
			continue
		}
		a.expired.Add(int64(len(exp)))
		e.metrics.Expired.Add(float64(len(exp)))
		total += len(exp)
		attrs := []string{
			"shard", strconv.Itoa(a.id),
			"count", strconv.Itoa(len(exp)),
		}
		// Small batches record the task IDs outright; larger ones stay
		// countable without bloating the bounded journal ring.
		if len(exp) <= 8 {
			ids := make([]string, len(exp))
			for i, t := range exp {
				ids[i] = t.ID
			}
			attrs = append(attrs, "tasks", strings.Join(ids, ","))
		}
		e.journal.Emit(ops.EventExpire, "", attrs...)
	}
	return total
}

// ForecastTick folds each shard's arrival/completion counts accumulated
// since the previous tick into its forecaster's rate EWMAs and publishes
// the projected backlog gauges. The steal loop calls it once per round;
// engines that disable the loop (negative StealInterval) or tests drive
// it explicitly. No-op when the engine is not predictive.
func (e *Engine) ForecastTick() {
	if e.forecast == nil {
		return
	}
	for i, f := range e.forecast {
		f.Tick()
		pred := f.PredictedBacklog(e.actors[i].asn.Backlog(), e.cfg.ForecastHorizon)
		e.actors[i].metrics.Predicted.Set(pred)
	}
}

// Predictive reports whether forecast-driven rebalancing is on.
func (e *Engine) Predictive() bool { return e.forecast != nil }
