package bot

import (
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/crowd"
	"github.com/htacs/ata/internal/platform"
	"github.com/htacs/ata/internal/question"
	"github.com/htacs/ata/internal/workload"
)

const universe = 100

// testDeployment spins up a graded platform over a 22-kind corpus.
func testDeployment(t *testing.T) (*platform.Client, *question.Bank) {
	t.Helper()
	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax:             6,
		ExtraRandomTasks: 2,
		Rand:             rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{Seed: 4, Universe: universe})
	if err != nil {
		t.Fatal(err)
	}
	tasks := gen.Tasks(22, 12)
	bank, err := question.Generate(tasks, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := platform.NewServer(platform.ServerConfig{
		Engine: engine, Universe: universe, Questions: bank, ReassignPerWorker: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := platform.NewClient(ts.URL, ts.Client())
	if err := client.AddTasks(tasks); err != nil {
		t.Fatal(err)
	}
	return client, bank
}

func simWorker(id string, seed int64) *crowd.SimWorker {
	r := rand.New(rand.NewSource(seed))
	kw := bitset.New(universe)
	for kw.Count() < 6 {
		kw.Add(r.Intn(universe))
	}
	return &crowd.SimWorker{
		Worker:    &core.Worker{ID: id, Keywords: kw},
		TrueAlpha: 0.25 + 0.5*r.Float64(),
		Skill:     1,
		Speed:     1,
	}
}

func oracleFor(bank *question.Bank) Oracle {
	return func(taskID, questionID string) (int, bool) {
		for _, q := range bank.ForTask(taskID) {
			if q.ID == questionID {
				return q.Answer, true
			}
		}
		return 0, false
	}
}

func shortSession() crowd.Params {
	p := crowd.DefaultParams()
	p.SessionMinutes = 8
	return p
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil client accepted")
	}
	client, _ := testDeployment(t)
	if _, err := Run(Config{Client: client, Worker: simWorker("w", 1)}); err == nil {
		t.Error("zero universe accepted")
	}
}

func TestBotSessionEndToEnd(t *testing.T) {
	client, bank := testDeployment(t)
	res, err := Run(Config{
		Client:   client,
		Worker:   simWorker("bot-1", 7),
		Universe: universe,
		Params:   shortSession(),
		Oracle:   oracleFor(bank),
		Rand:     rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("bot completed nothing")
	}
	if res.Graded == 0 {
		t.Fatal("bot answered no questions")
	}
	if res.Correct == 0 || res.Correct > res.Graded {
		t.Fatalf("grading off: %d/%d", res.Correct, res.Graded)
	}
	if res.DurationMinutes <= 0 || res.DurationMinutes > shortSession().SessionMinutes {
		t.Fatalf("duration = %g", res.DurationMinutes)
	}
	if res.FinalAlpha <= 0 || res.FinalBeta <= 0 {
		t.Fatalf("no learned weights: α=%g β=%g", res.FinalAlpha, res.FinalBeta)
	}
	// The server saw the same grading totals.
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Graded != res.Graded || stats.Correct != res.Correct {
		t.Fatalf("server counters (%d/%d) != bot (%d/%d)",
			stats.Correct, stats.Graded, res.Correct, res.Graded)
	}
	// The bot left the platform at session end.
	for _, w := range stats.Workers {
		if w.ID == "bot-1" && w.Available {
			t.Fatal("bot still marked available after leaving")
		}
	}
}

func TestBotWithoutOracleSkipsAnswers(t *testing.T) {
	client, _ := testDeployment(t)
	res, err := Run(Config{
		Client:   client,
		Worker:   simWorker("bot-2", 9),
		Universe: universe,
		Params:   shortSession(),
		Rand:     rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graded != 0 {
		t.Fatalf("oracle-less bot graded %d answers", res.Graded)
	}
	if res.Completed == 0 {
		t.Fatal("bot completed nothing")
	}
}

// TestConcurrentBots runs several bots in parallel against one platform —
// the full multi-worker deployment over real HTTP.
func TestConcurrentBots(t *testing.T) {
	client, bank := testDeployment(t)
	const bots = 4
	var wg sync.WaitGroup
	results := make([]*Result, bots)
	errs := make([]error, bots)
	for i := 0; i < bots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(Config{
				Client:   client,
				Worker:   simWorker(string(rune('a'+i))+"-bot", int64(20+i)),
				Universe: universe,
				Params:   shortSession(),
				Oracle:   oracleFor(bank),
				Rand:     rand.New(rand.NewSource(int64(30 + i))),
			})
		}(i)
	}
	wg.Wait()
	totalCompleted := 0
	for i := 0; i < bots; i++ {
		if errs[i] != nil {
			t.Fatalf("bot %d: %v", i, errs[i])
		}
		totalCompleted += results[i].Completed
	}
	if totalCompleted == 0 {
		t.Fatal("no bot completed anything")
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var serverCompleted int
	for _, w := range stats.Workers {
		serverCompleted += w.Completed
	}
	if serverCompleted != totalCompleted {
		t.Fatalf("server saw %d completions, bots report %d", serverCompleted, totalCompleted)
	}
}
