// Package bot drives the HTTP assignment platform with simulated crowd
// workers — the live deployment of Section V-C run end to end over the
// wire: registration with keyword interests, task choice, graded answers,
// boredom and dropout all happen against a real platform.Server instead of
// an in-process engine.
//
// The behavioural model is the same as package crowd's (engagement/boredom,
// switch overhead, per-worker flow hazard); only the transport differs.
// Because the workers are simulated, correct answers come from an Oracle
// the caller supplies (typically backed by the same question bank the
// server grades against — a live deployment has humans instead); the
// behavioural accuracy channel decides whether the bot uses or deviates
// from the oracle, exactly as in the crowd simulator.
package bot

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/crowd"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/platform"
)

// Oracle returns the ground-truth option for a question, if known.
type Oracle func(taskID, questionID string) (option int, ok bool)

// Config parameterizes one bot session.
type Config struct {
	// Client targets the platform.
	Client *platform.Client
	// Worker carries the latent traits (keywords, TrueAlpha, skill, speed).
	Worker *crowd.SimWorker
	// Universe is the keyword universe size used to rebuild task vectors
	// from the wire format.
	Universe int
	// Params are the behavioural constants; zero value = crowd defaults.
	Params crowd.Params
	// Oracle answers graded questions; nil bots skip answering.
	Oracle Oracle
	// Rand drives the stochastic behaviour. Defaults to a fixed seed.
	Rand *rand.Rand
	// RealTimePerSimMinute throttles the bot to mimic wall-clock pacing;
	// zero runs as fast as the server allows (simulated time still
	// advances by the behavioural model).
	RealTimePerSimMinute time.Duration
}

// Result summarizes one bot-driven session.
type Result struct {
	WorkerID        string
	Completed       int
	Graded          int
	Correct         int
	DurationMinutes float64 // simulated minutes
	DroppedOut      bool
	FinalAlpha      float64
	FinalBeta       float64
}

// Run registers the worker and plays a full work session against the
// platform.
func Run(cfg Config) (*Result, error) {
	if cfg.Client == nil || cfg.Worker == nil {
		return nil, errors.New("bot: nil client or worker")
	}
	if cfg.Universe < 1 {
		return nil, fmt.Errorf("bot: universe = %d", cfg.Universe)
	}
	p := cfg.Params
	if p.SessionMinutes == 0 {
		p = crowd.DefaultParams()
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	dist := metric.Jaccard{}

	display, err := cfg.Client.Register(cfg.Worker.Worker.ID, cfg.Worker.Worker.Keywords.Indices())
	if err != nil {
		return nil, fmt.Errorf("bot: registering: %w", err)
	}

	res := &Result{WorkerID: cfg.Worker.Worker.ID}
	var elapsed, boredom float64
	var history []*bitset.Set // keyword vectors of completed tasks, in order

	for elapsed < p.SessionMinutes {
		next := pickTask(cfg, rng, dist, display, history, p)
		if next == nil {
			fresh, err := cfg.Client.Tasks(cfg.Worker.Worker.ID)
			if err != nil {
				return nil, err
			}
			if allDone(fresh) {
				break // platform has nothing left for us
			}
			display = fresh
			continue
		}
		kw := bitset.FromIndices(cfg.Universe, next.Keywords...)

		novelty := p.NoveltyThreshold
		if n := len(history); n > 0 {
			win := history[max(0, n-p.NoveltyWindow):]
			var sum float64
			for _, h := range win {
				sum += dist.Distance(kw, h)
			}
			novelty = sum / float64(len(win))
		}
		seconds := cfg.Worker.Speed * (p.BaseTaskSeconds + p.DivOverheadSeconds*novelty)
		seconds *= 0.85 + 0.3*rng.Float64()
		elapsed += seconds / 60
		if elapsed > p.SessionMinutes {
			break
		}
		if cfg.RealTimePerSimMinute > 0 {
			time.Sleep(time.Duration(float64(cfg.RealTimePerSimMinute) * seconds / 60))
		}

		boredom += p.BoredomRate * (p.NoveltyThreshold - novelty)
		boredom = math.Max(0, math.Min(p.BoredomCap, boredom))
		engagement := 1 / (1 + boredom)
		rel := metric.Relevance(dist, kw, cfg.Worker.Worker.Keywords)
		pCorrect := cfg.Worker.Skill * (p.BaseAccuracy + p.EngagementGain*engagement + p.RelevanceGain*rel)
		pCorrect = math.Max(0.05, math.Min(0.98, pCorrect))

		answers := answerQuestions(cfg, rng, next, pCorrect)
		resp, err := cfg.Client.CompleteWithAnswers(cfg.Worker.Worker.ID, next.ID, answers)
		if err != nil {
			if strings.Contains(err.Error(), "not assigned") {
				// A global iteration replaced our set mid-flight; refetch.
				fresh, ferr := cfg.Client.Tasks(cfg.Worker.Worker.ID)
				if ferr != nil {
					return nil, ferr
				}
				display = fresh
				continue
			}
			return nil, err
		}
		history = append(history, kw)
		res.Completed++
		res.Graded += resp.Graded
		res.Correct += resp.Correct
		res.FinalAlpha, res.FinalBeta = resp.Alpha, resp.Beta
		display = resp.Tasks

		ideal := 0.25 + 0.6*cfg.Worker.TrueAlpha
		ramp := 1 + p.HazardRamp*math.Pow(elapsed/p.SessionMinutes, 2)
		hazard := (p.HazardBase + p.HazardBoredom*math.Max(0, boredom-p.BoredomGrace) +
			p.HazardFlow*math.Abs(novelty-ideal) + p.HazardMismatch*(1-rel)) * ramp
		if rng.Float64() < hazard {
			res.DroppedOut = true
			break
		}
	}
	if elapsed > p.SessionMinutes {
		elapsed = p.SessionMinutes
	}
	res.DurationMinutes = elapsed
	if err := cfg.Client.Leave(cfg.Worker.Worker.ID); err != nil {
		return nil, fmt.Errorf("bot: leaving: %w", err)
	}
	return res, nil
}

// pickTask chooses the next not-done task by the worker's latent utility;
// nil when nothing is pending in the current display.
func pickTask(cfg Config, rng *rand.Rand, dist metric.Jaccard, display []platform.TaskView, history []*bitset.Set, p crowd.Params) *platform.TaskView {
	var best *platform.TaskView
	bestU := math.Inf(-1)
	norm := float64(len(history))
	for i := range display {
		t := &display[i]
		if t.Done {
			continue
		}
		kw := bitset.FromIndices(cfg.Universe, t.Keywords...)
		var marg float64
		if norm > 0 {
			for _, h := range history {
				marg += dist.Distance(kw, h)
			}
			marg /= norm
		}
		rel := metric.Relevance(dist, kw, cfg.Worker.Worker.Keywords)
		u := cfg.Worker.TrueAlpha*marg + (1-cfg.Worker.TrueAlpha)*rel + 0.15*rng.Float64()
		if u > bestU {
			bestU, best = u, t
		}
	}
	return best
}

// answerQuestions produces the bot's answers: the oracle's option with
// probability pCorrect, otherwise a uniformly wrong one.
func answerQuestions(cfg Config, rng *rand.Rand, task *platform.TaskView, pCorrect float64) []platform.Answer {
	if cfg.Oracle == nil || len(task.Questions) == 0 {
		return nil
	}
	answers := make([]platform.Answer, 0, len(task.Questions))
	for _, q := range task.Questions {
		truth, ok := cfg.Oracle(task.ID, q.ID)
		if !ok {
			continue
		}
		option := truth
		if rng.Float64() >= pCorrect {
			// Deliberately wrong: uniform over the other options.
			option = rng.Intn(len(q.Options) - 1)
			if option >= truth {
				option++
			}
		}
		answers = append(answers, platform.Answer{QuestionID: q.ID, Option: option})
	}
	return answers
}

func allDone(display []platform.TaskView) bool {
	for _, t := range display {
		if !t.Done {
			return false
		}
	}
	return true
}
