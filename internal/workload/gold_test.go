package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestGoldRoundTrip(t *testing.T) {
	gen, err := NewGenerator(Config{Universe: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tasks := gen.Tasks(20, 5)
	gold, err := Gold(tasks, 0.3, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(gold); n < 10 || n > 50 {
		t.Fatalf("gold entries: %d of %d tasks at rate 0.3", n, len(tasks))
	}
	again, err := Gold(tasks, 0.3, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(gold) {
		t.Fatalf("same seed drew %d then %d entries", len(gold), len(again))
	}
	for i := range gold {
		if gold[i] != again[i] {
			t.Fatalf("entry %d diverged across identical seeds: %+v vs %+v", i, gold[i], again[i])
		}
		if gold[i].Answer < 0 || gold[i].Answer >= 4 {
			t.Fatalf("entry %d answer out of range: %+v", i, gold[i])
		}
	}

	var buf bytes.Buffer
	if err := WriteGold(&buf, gold); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGold(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(gold) {
		t.Fatalf("round trip: %d entries, want %d", len(back), len(gold))
	}
	for i := range gold {
		if back[i] != gold[i] {
			t.Fatalf("entry %d: %+v != %+v", i, back[i], gold[i])
		}
	}
}

func TestGoldValidation(t *testing.T) {
	if _, err := Gold(nil, 1.5, 4, 1); err == nil {
		t.Error("rate 1.5 accepted")
	}
	if _, err := Gold(nil, 0.5, 1, 1); err == nil {
		t.Error("options 1 accepted")
	}
	for _, bad := range []string{
		`{"task_id":"","answer":0}`,
		`{"task_id":"t1","answer":-1}`,
		`{"task_id":"t1","answer":0}` + "\n" + `{"task_id":"t1","answer":1}`,
	} {
		if _, err := ReadGold(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
