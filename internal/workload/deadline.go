package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"github.com/htacs/ata/internal/core"
)

// Deadline and availability-window trace generation for the predictive
// scheduling subsystem (internal/schedule): deadline leads annotate a
// task set, window declarations annotate a worker pool, and BurstSchedule
// shapes arrivals into the bursty pattern the pr10 sweep contrasts
// predictive and reactive rebalancing on.
//
// Leads and window lengths are *relative* offsets from the consumer's
// trace start (logical-clock nanoseconds by convention): a replayer adds
// its own clock base at offer/registration time. Generated files are
// therefore replayable at any wall-clock instant and under any logical
// clock, unlike absolute timestamps which would rot the moment they were
// written.

// Deadlines annotates a fraction of the tasks with deadline leads drawn
// uniformly from [minLead, maxLead] (inclusive of minLead). The lead is
// stored in Task.Deadline as an offset from trace start; replayers
// rebase it to an absolute instant when they offer the task. Returns how
// many tasks were annotated. Seeded separately from the generator's
// keyword draws (the gold-key pattern) so -tasks-out and -deadlines
// agree across invocations.
func Deadlines(tasks []*core.Task, frac float64, minLead, maxLead int64, seed int64) (int, error) {
	if frac < 0 || frac > 1 {
		return 0, fmt.Errorf("workload: deadline fraction %v outside [0, 1]", frac)
	}
	if minLead <= 0 || maxLead < minLead {
		return 0, fmt.Errorf("workload: deadline leads [%d, %d], need 0 < min <= max", minLead, maxLead)
	}
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for _, t := range tasks {
		if rng.Float64() < frac {
			t.Deadline = minLead + rng.Int63n(maxLead-minLead+1)
			n++
		}
	}
	return n, nil
}

// WindowDecl is one worker availability-window declaration: the worker
// promises to stay for Length (an offset from its registration instant).
// hta-gen emits these with -windows-out; a replayer converts Length to
// an absolute window end (now + Length) when registering the worker.
type WindowDecl struct {
	Worker string `json:"worker"`
	Length int64  `json:"length"`
}

// Windows samples availability-window declarations over a worker pool:
// each worker declares with probability frac, with a session length
// drawn uniformly from [minLen, maxLen]. Seeded independently of the
// worker draws, like Gold.
func Windows(workers []*core.Worker, frac float64, minLen, maxLen int64, seed int64) ([]WindowDecl, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("workload: window fraction %v outside [0, 1]", frac)
	}
	if minLen <= 0 || maxLen < minLen {
		return nil, fmt.Errorf("workload: window lengths [%d, %d], need 0 < min <= max", minLen, maxLen)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []WindowDecl
	for _, w := range workers {
		if rng.Float64() < frac {
			out = append(out, WindowDecl{
				Worker: w.ID,
				Length: minLen + rng.Int63n(maxLen-minLen+1),
			})
		}
	}
	return out, nil
}

// WriteWindows streams window declarations as JSON lines.
func WriteWindows(w io.Writer, decls []WindowDecl) error {
	enc := json.NewEncoder(w)
	for _, d := range decls {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("workload: encoding window for %s: %w", d.Worker, err)
		}
	}
	return nil
}

// ReadWindows parses declarations written by WriteWindows, rejecting
// empty workers, non-positive lengths, and duplicates.
func ReadWindows(r io.Reader) ([]WindowDecl, error) {
	dec := json.NewDecoder(r)
	seen := map[string]struct{}{}
	var out []WindowDecl
	for {
		var rec WindowDecl
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("workload: decoding window %d: %w", len(out), err)
		}
		if rec.Worker == "" {
			return nil, fmt.Errorf("workload: window entry %d has no worker", len(out))
		}
		if rec.Length <= 0 {
			return nil, fmt.Errorf("workload: window for %q has length %d", rec.Worker, rec.Length)
		}
		if _, dup := seen[rec.Worker]; dup {
			return nil, fmt.Errorf("workload: window for %q listed twice", rec.Worker)
		}
		seen[rec.Worker] = struct{}{}
		out = append(out, rec)
	}
}

// BurstSchedule returns arrivals-per-step over a horizon: base arrivals
// every step, plus burst extra arrivals on each step of every burst —
// bursts of burstLen steps starting every period steps. This is the
// on/off (interrupted Poisson-like) shape whose arrival variance the
// forecaster's burstiness guard exists for; a steady stream (burst = 0)
// has zero variance and the guard adds nothing.
func BurstSchedule(horizon, base, burst, period, burstLen int) ([]int, error) {
	if horizon < 1 {
		return nil, fmt.Errorf("workload: burst horizon = %d", horizon)
	}
	if base < 0 || burst < 0 {
		return nil, fmt.Errorf("workload: negative arrival counts (base %d, burst %d)", base, burst)
	}
	if burst > 0 && (period < 1 || burstLen < 1 || burstLen > period) {
		return nil, fmt.Errorf("workload: burst period %d / length %d, need 1 <= length <= period", period, burstLen)
	}
	sched := make([]int, horizon)
	for i := range sched {
		sched[i] = base
		if burst > 0 && i%period < burstLen {
			sched[i] += burst
		}
	}
	return sched, nil
}
