package workload

import (
	"bytes"
	"testing"
)

func TestDeadlinesAnnotateAndRoundTrip(t *testing.T) {
	gen, err := NewGenerator(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tasks := gen.Tasks(10, 5)
	n, err := Deadlines(tasks, 0.5, 1000, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n == len(tasks) {
		t.Fatalf("annotated %d of %d tasks at frac 0.5, want a strict subset", n, len(tasks))
	}
	seen := 0
	for _, task := range tasks {
		if task.Deadline == 0 {
			continue
		}
		seen++
		if task.Deadline < 1000 || task.Deadline > 5000 {
			t.Fatalf("task %s lead %d outside [1000, 5000]", task.ID, task.Deadline)
		}
	}
	if seen != n {
		t.Fatalf("Deadlines reported %d annotations, found %d", n, seen)
	}

	// Determinism: the same seed reproduces the same leads.
	again := gen.Tasks(10, 5) // fresh copies, different rng state is fine: IDs/count match
	if _, err := Deadlines(again, 0.5, 1000, 5000, 11); err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if tasks[i].Deadline != again[i].Deadline {
			t.Fatalf("lead for %s not deterministic: %d vs %d", tasks[i].ID, tasks[i].Deadline, again[i].Deadline)
		}
	}

	// Leads survive the JSON-lines round trip.
	var buf bytes.Buffer
	if err := WriteTasks(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTasks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tasks) {
		t.Fatalf("round trip returned %d tasks, want %d", len(back), len(tasks))
	}
	for i := range tasks {
		if back[i].Deadline != tasks[i].Deadline {
			t.Fatalf("task %s deadline %d after round trip, want %d", back[i].ID, back[i].Deadline, tasks[i].Deadline)
		}
	}

	if _, err := Deadlines(tasks, 1.5, 1, 2, 1); err == nil {
		t.Fatal("fraction 1.5 accepted")
	}
	if _, err := Deadlines(tasks, 0.5, 0, 2, 1); err == nil {
		t.Fatal("zero min lead accepted")
	}
}

func TestWindowsRoundTrip(t *testing.T) {
	gen, err := NewGenerator(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	workers := gen.Workers(40)
	decls, err := Windows(workers, 0.6, 100, 900, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) == 0 || len(decls) == len(workers) {
		t.Fatalf("declared %d of %d at frac 0.6, want a strict subset", len(decls), len(workers))
	}
	for _, d := range decls {
		if d.Length < 100 || d.Length > 900 {
			t.Fatalf("window %s length %d outside [100, 900]", d.Worker, d.Length)
		}
	}
	var buf bytes.Buffer
	if err := WriteWindows(&buf, decls); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(decls) {
		t.Fatalf("round trip returned %d declarations, want %d", len(back), len(decls))
	}
	for i := range decls {
		if back[i] != decls[i] {
			t.Fatalf("declaration %d mutated: %+v vs %+v", i, back[i], decls[i])
		}
	}

	// Duplicate workers are a malformed file.
	dup := bytes.NewBufferString(`{"worker":"w1","length":5}` + "\n" + `{"worker":"w1","length":9}` + "\n")
	if _, err := ReadWindows(dup); err == nil {
		t.Fatal("duplicate window declaration accepted")
	}
}

func TestBurstSchedule(t *testing.T) {
	sched, err := BurstSchedule(20, 1, 8, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 20 {
		t.Fatalf("schedule length %d, want 20", len(sched))
	}
	total := 0
	for i, n := range sched {
		want := 1
		if i%10 < 2 {
			want = 9
		}
		if n != want {
			t.Fatalf("step %d arrivals %d, want %d", i, n, want)
		}
		total += n
	}
	if want := 20*1 + 4*8; total != want {
		t.Fatalf("total arrivals %d, want %d", total, want)
	}

	// Steady stream: no bursts, constant rate.
	steady, err := BurstSchedule(5, 3, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range steady {
		if n != 3 {
			t.Fatalf("steady schedule emitted %d, want 3", n)
		}
	}

	if _, err := BurstSchedule(10, 1, 4, 3, 5); err == nil {
		t.Fatal("burst length > period accepted")
	}
}
