// Package workload generates synthetic crowdsourcing workloads shaped like
// the data of the paper's experiments (Section V-B):
//
//   - The offline experiments crawled 152,221 task groups from Amazon
//     Mechanical Turk; each group carries metadata (title, reward,
//     requester, keywords) shared by all its tasks. The experiments vary
//     #task groups × #tasks per group = |T|, using the group structure to
//     control task diversity (Figure 3: 10 → 10,000 groups at fixed |T|).
//   - Workers are synthetic: five uniformly drawn keywords each, plus
//     random (α, β).
//
// We cannot redistribute the crawl, so Generator reproduces its degrees of
// freedom: a keyword vocabulary with a Zipf-like popularity skew (AMT
// keywords such as "survey" and "english" dominate), per-group keyword
// sets, rewards in the micro-task range, and group-structured tasks. Every
// quantity the offline experiments read — keyword vectors and group
// structure — is generated; everything else (titles, requesters) is
// produced for realism and round-tripping.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
)

// vocabulary seeds the keyword universe with terms that actually dominate
// AMT/CrowdFlower metadata; indexes beyond the list are synthesized.
var vocabulary = []string{
	"survey", "english", "audio", "transcription", "image", "tagging",
	"sentiment", "analysis", "classification", "tweet", "news", "video",
	"google", "street", "view", "search", "web", "research", "writing",
	"translation", "spanish", "french", "german", "data", "entry",
	"collection", "categorization", "moderation", "content", "adult",
	"photo", "receipt", "product", "shopping", "review", "opinion",
	"question", "answer", "quiz", "psychology", "study", "academic",
	"easy", "quick", "fun", "bonus", "qualification", "spam", "detection",
	"entity", "resolution", "matching", "deduplication", "extraction",
	"annotation", "labeling", "bounding", "box", "ocr", "handwriting",
	"speech", "recording", "voice", "music", "podcast", "interview",
	"medical", "legal", "finance", "sports", "politics", "celebrity",
	"food", "restaurant", "travel", "hotel", "map", "location", "address",
	"phone", "email", "website", "url", "verification", "validation",
	"comparison", "ranking", "rating", "summarization", "keyword",
	"relevance", "judgment", "evaluation", "testing", "usability",
	"demographics", "health", "fitness", "education", "language",
}

// Keyword returns the display name of keyword index i.
func Keyword(i int) string {
	if i < len(vocabulary) {
		return vocabulary[i]
	}
	return fmt.Sprintf("kw%d", i)
}

// Config parameterizes a Generator.
type Config struct {
	// Universe is the number of distinct keywords (R in the paper).
	// Defaults to 100.
	Universe int
	// KeywordsPerGroup is the number of keywords attached to each task
	// group's metadata. Defaults to 5, matching typical AMT groups.
	KeywordsPerGroup int
	// KeywordsPerWorker is the number of interests drawn per worker.
	// The paper uses 5 for synthetic workers and asked live workers to
	// choose at least 6. Defaults to 5.
	KeywordsPerWorker int
	// ZipfS is the skew of keyword popularity (s parameter of the Zipf
	// distribution); 0 disables the skew (uniform draws). Defaults to 1.2.
	ZipfS float64
	// Seed makes generation reproducible.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.Universe == 0 {
		c.Universe = 100
	}
	if c.KeywordsPerGroup == 0 {
		c.KeywordsPerGroup = 5
	}
	if c.KeywordsPerWorker == 0 {
		c.KeywordsPerWorker = 5
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
}

// Generator produces tasks, task groups and workers.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewGenerator builds a generator; zero-valued Config fields get defaults.
func NewGenerator(cfg Config) (*Generator, error) {
	cfg.applyDefaults()
	if cfg.Universe < 1 {
		return nil, fmt.Errorf("workload: Universe = %d", cfg.Universe)
	}
	if cfg.KeywordsPerGroup < 1 || cfg.KeywordsPerGroup > cfg.Universe {
		return nil, fmt.Errorf("workload: KeywordsPerGroup = %d with universe %d", cfg.KeywordsPerGroup, cfg.Universe)
	}
	if cfg.KeywordsPerWorker < 1 || cfg.KeywordsPerWorker > cfg.Universe {
		return nil, fmt.Errorf("workload: KeywordsPerWorker = %d with universe %d", cfg.KeywordsPerWorker, cfg.Universe)
	}
	if cfg.ZipfS < 0 {
		return nil, fmt.Errorf("workload: ZipfS = %g", cfg.ZipfS)
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.ZipfS > 0 {
		// rand.Zipf requires s > 1; interpret 0 < s <= 1 as mild skew 1.01.
		s := cfg.ZipfS
		if s <= 1 {
			s = 1.01
		}
		g.zipf = rand.NewZipf(g.rng, s, 1, uint64(cfg.Universe-1))
	}
	return g, nil
}

// Universe returns the keyword universe size.
func (g *Generator) Universe() int { return g.cfg.Universe }

// drawKeyword samples one keyword index with the configured skew.
func (g *Generator) drawKeyword() int {
	if g.zipf == nil {
		return g.rng.Intn(g.cfg.Universe)
	}
	return int(g.zipf.Uint64())
}

// keywordSet draws a set of exactly n distinct keyword indices.
func (g *Generator) keywordSet(n int) *bitset.Set {
	s := bitset.New(g.cfg.Universe)
	for s.Count() < n {
		s.Add(g.drawKeyword())
	}
	return s
}

// Group is the metadata shared by all tasks generated from one AMT-like
// task group.
type Group struct {
	ID        string
	Title     string
	Requester string
	Reward    float64
	Keywords  *bitset.Set
}

// Groups generates n task groups.
func (g *Generator) Groups(n int) []*Group {
	groups := make([]*Group, n)
	for i := range groups {
		kw := g.keywordSet(g.cfg.KeywordsPerGroup)
		first := 0
		if idx := kw.Indices(); len(idx) > 0 {
			first = idx[0]
		}
		groups[i] = &Group{
			ID:        fmt.Sprintf("g%04d", i),
			Title:     fmt.Sprintf("%s task batch %d", Keyword(first), i),
			Requester: fmt.Sprintf("requester-%02d", g.rng.Intn(40)),
			// Micro-task rewards: the paper's live tasks paid $0.01–$0.12.
			Reward:   0.01 + float64(g.rng.Intn(12))/100,
			Keywords: kw,
		}
	}
	return groups
}

// Tasks generates numGroups×tasksPerGroup tasks; tasks of one group share
// the group's keyword vector exactly, as on AMT, which is what lets the
// Figure 3 experiment steer aggregate diversity through the group count.
func (g *Generator) Tasks(numGroups, tasksPerGroup int) []*core.Task {
	groups := g.Groups(numGroups)
	tasks := make([]*core.Task, 0, numGroups*tasksPerGroup)
	for _, grp := range groups {
		for j := 0; j < tasksPerGroup; j++ {
			tasks = append(tasks, &core.Task{
				ID:       fmt.Sprintf("%s-t%03d", grp.ID, j),
				Group:    grp.ID,
				Reward:   grp.Reward,
				Keywords: grp.Keywords, // shared, immutable by convention
			})
		}
	}
	return tasks
}

// Workers generates n synthetic workers with KeywordsPerWorker uniform
// keyword interests and uniform-random motivation weights (normalized to
// α+β = 1), exactly as in Section V-B.
func (g *Generator) Workers(n int) []*core.Worker {
	workers := make([]*core.Worker, n)
	for i := range workers {
		// Interests are drawn uniformly (not Zipf): the paper states a
		// pseudo-random uniform generator.
		kw := bitset.New(g.cfg.Universe)
		for kw.Count() < g.cfg.KeywordsPerWorker {
			kw.Add(g.rng.Intn(g.cfg.Universe))
		}
		w := &core.Worker{
			ID:       fmt.Sprintf("w%04d", i),
			Keywords: kw,
			Alpha:    g.rng.Float64(),
			Beta:     g.rng.Float64(),
		}
		w.NormalizeWeights()
		workers[i] = w
	}
	return workers
}

// taskJSON is the serialized form of a task.
type taskJSON struct {
	ID       string   `json:"id"`
	Group    string   `json:"group,omitempty"`
	Reward   float64  `json:"reward,omitempty"`
	Deadline int64    `json:"deadline,omitempty"`
	Universe int      `json:"universe"`
	Keywords []int    `json:"keywords"`
	Names    []string `json:"names,omitempty"`
}

// workerJSON is the serialized form of a worker.
type workerJSON struct {
	ID       string  `json:"id"`
	Alpha    float64 `json:"alpha"`
	Beta     float64 `json:"beta"`
	Universe int     `json:"universe"`
	Keywords []int   `json:"keywords"`
}

// WriteTasks streams tasks as JSON lines.
func WriteTasks(w io.Writer, tasks []*core.Task) error {
	enc := json.NewEncoder(w)
	for _, t := range tasks {
		idx := t.Keywords.Indices()
		names := make([]string, len(idx))
		for i, k := range idx {
			names[i] = Keyword(k)
		}
		rec := taskJSON{
			ID: t.ID, Group: t.Group, Reward: t.Reward, Deadline: t.Deadline,
			Universe: t.Keywords.Len(), Keywords: idx, Names: names,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("workload: encoding task %s: %w", t.ID, err)
		}
	}
	return nil
}

// ReadTasks parses tasks written by WriteTasks.
func ReadTasks(r io.Reader) ([]*core.Task, error) {
	dec := json.NewDecoder(r)
	var out []*core.Task
	for {
		var rec taskJSON
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("workload: decoding task %d: %w", len(out), err)
		}
		if rec.Universe < 1 {
			return nil, fmt.Errorf("workload: task %q has universe %d", rec.ID, rec.Universe)
		}
		if err := checkKeywords(rec.Keywords, rec.Universe); err != nil {
			return nil, fmt.Errorf("workload: task %q: %w", rec.ID, err)
		}
		if rec.Deadline < 0 {
			return nil, fmt.Errorf("workload: task %q has deadline %d", rec.ID, rec.Deadline)
		}
		out = append(out, &core.Task{
			ID: rec.ID, Group: rec.Group, Reward: rec.Reward, Deadline: rec.Deadline,
			Keywords: bitset.FromIndices(rec.Universe, rec.Keywords...),
		})
	}
}

// checkKeywords rejects keyword indices outside [0, universe).
func checkKeywords(keywords []int, universe int) error {
	for _, k := range keywords {
		if k < 0 || k >= universe {
			return fmt.Errorf("keyword %d outside universe [0,%d)", k, universe)
		}
	}
	return nil
}

// WriteWorkers streams workers as JSON lines.
func WriteWorkers(w io.Writer, workers []*core.Worker) error {
	enc := json.NewEncoder(w)
	for _, wk := range workers {
		rec := workerJSON{
			ID: wk.ID, Alpha: wk.Alpha, Beta: wk.Beta,
			Universe: wk.Keywords.Len(), Keywords: wk.Keywords.Indices(),
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("workload: encoding worker %s: %w", wk.ID, err)
		}
	}
	return nil
}

// ReadWorkers parses workers written by WriteWorkers.
func ReadWorkers(r io.Reader) ([]*core.Worker, error) {
	dec := json.NewDecoder(r)
	var out []*core.Worker
	for {
		var rec workerJSON
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("workload: decoding worker %d: %w", len(out), err)
		}
		if rec.Universe < 1 {
			return nil, fmt.Errorf("workload: worker %q has universe %d", rec.ID, rec.Universe)
		}
		if err := checkKeywords(rec.Keywords, rec.Universe); err != nil {
			return nil, fmt.Errorf("workload: worker %q: %w", rec.ID, err)
		}
		out = append(out, &core.Worker{
			ID: rec.ID, Alpha: rec.Alpha, Beta: rec.Beta,
			Keywords: bitset.FromIndices(rec.Universe, rec.Keywords...),
		})
	}
}
