package workload_test

import (
	"fmt"
	"log"

	"github.com/htacs/ata/internal/workload"
)

// ExampleGenerator produces an AMT-shaped workload: task groups sharing
// keyword metadata, and synthetic workers with normalized (α, β).
func ExampleGenerator() {
	gen, err := workload.NewGenerator(workload.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	tasks := gen.Tasks(3, 4) // 3 groups × 4 tasks
	workers := gen.Workers(2)

	fmt.Printf("%d tasks in %d groups\n", len(tasks), 3)
	fmt.Println("same-group tasks share keywords:",
		tasks[0].Keywords.Equal(tasks[1].Keywords))
	fmt.Println("cross-group tasks differ:",
		!tasks[0].Keywords.Equal(tasks[4].Keywords))
	for _, w := range workers {
		fmt.Printf("%s: %d interests, α+β = %.0f\n",
			w.ID, w.Keywords.Count(), w.Alpha+w.Beta)
	}
	// Output:
	// 12 tasks in 3 groups
	// same-group tasks share keywords: true
	// cross-group tasks differ: true
	// w0000: 5 interests, α+β = 1
	// w0001: 5 interests, α+β = 1
}
