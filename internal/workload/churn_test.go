package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestChurnValidation(t *testing.T) {
	g := mustGen(t, Config{Universe: 20, Seed: 1})
	ws := g.Workers(4)
	if _, err := g.Churn(ws, 0, 0.5); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := g.Churn(ws, 100, -0.1); err == nil {
		t.Error("negative depart fraction accepted")
	}
	if _, err := g.Churn(ws, 100, 1.5); err == nil {
		t.Error("depart fraction > 1 accepted")
	}
}

func TestChurnTraceShape(t *testing.T) {
	g := mustGen(t, Config{Universe: 20, Seed: 7})
	ws := g.Workers(50)
	events, err := g.Churn(ws, 1000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := map[string]int{}
	departs := map[string]int{}
	alive := map[string]bool{}
	last := 0
	for i, ev := range events {
		if ev.At < 0 || ev.At >= 1000 {
			t.Fatalf("event %d outside horizon: %+v", i, ev)
		}
		if ev.At < last {
			t.Fatalf("event %d out of order: step %d after %d", i, ev.At, last)
		}
		last = ev.At
		if ev.Arrive {
			arrivals[ev.Worker]++
			alive[ev.Worker] = true
		} else {
			departs[ev.Worker]++
			if !alive[ev.Worker] {
				t.Fatalf("event %d departs %s before it arrived", i, ev.Worker)
			}
			alive[ev.Worker] = false
		}
	}
	if len(arrivals) != 50 {
		t.Fatalf("%d distinct workers arrive, want all 50", len(arrivals))
	}
	for id, n := range arrivals {
		if n != 1 {
			t.Fatalf("worker %s arrives %d times", id, n)
		}
	}
	if len(departs) == 0 || len(departs) == 50 {
		t.Fatalf("%d of 50 workers depart; departFrac=0.5 should leave a mix", len(departs))
	}
}

func TestChurnDeterministic(t *testing.T) {
	trace := func() []ChurnEvent {
		g := mustGen(t, Config{Universe: 20, Seed: 11})
		ws := g.Workers(20)
		events, err := g.Churn(ws, 500, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		return events
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChurnRoundTrip(t *testing.T) {
	g := mustGen(t, Config{Universe: 20, Seed: 3})
	events, err := g.Churn(g.Workers(15), 200, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChurn(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChurn(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d drifted: %+v vs %+v", i, got[i], events[i])
		}
	}
}

func TestReadChurnRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"negative step":  `{"at":-1,"arrive":true,"worker":"w1"}`,
		"missing worker": `{"at":3,"arrive":true}`,
		"out of order":   `{"at":5,"arrive":true,"worker":"w1"}` + "\n" + `{"at":2,"arrive":true,"worker":"w2"}`,
		"garbage":        `{"at":`,
	}
	for name, in := range cases {
		if _, err := ReadChurn(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
