package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/htacs/ata/internal/metric"
)

func mustGen(t *testing.T, cfg Config) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Universe: -1},
		{Universe: 3, KeywordsPerGroup: 5},
		{Universe: 3, KeywordsPerWorker: 9},
		{ZipfS: -2},
	}
	for i, cfg := range cases {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

func TestDefaults(t *testing.T) {
	g := mustGen(t, Config{})
	if g.Universe() != 100 {
		t.Fatalf("Universe = %d, want default 100", g.Universe())
	}
}

func TestTasksShareGroupKeywords(t *testing.T) {
	g := mustGen(t, Config{Seed: 1})
	tasks := g.Tasks(4, 10)
	if len(tasks) != 40 {
		t.Fatalf("len = %d, want 40", len(tasks))
	}
	byGroup := map[string][]int{}
	for i, task := range tasks {
		byGroup[task.Group] = append(byGroup[task.Group], i)
	}
	if len(byGroup) != 4 {
		t.Fatalf("groups = %d, want 4", len(byGroup))
	}
	var j metric.Jaccard
	for _, idxs := range byGroup {
		for _, i := range idxs[1:] {
			if d := j.Distance(tasks[idxs[0]].Keywords, tasks[i].Keywords); d != 0 {
				t.Fatalf("tasks of the same group differ (d = %g)", d)
			}
		}
	}
}

func TestMoreGroupsMoreDiversity(t *testing.T) {
	// The Figure 3 premise: at fixed |T|, more groups → higher average
	// pairwise diversity.
	avg := func(numGroups, perGroup int) float64 {
		g := mustGen(t, Config{Seed: 7})
		tasks := g.Tasks(numGroups, perGroup)
		var j metric.Jaccard
		var sum float64
		var n int
		for a := 0; a < len(tasks); a++ {
			for b := a + 1; b < len(tasks); b++ {
				sum += j.Distance(tasks[a].Keywords, tasks[b].Keywords)
				n++
			}
		}
		return sum / float64(n)
	}
	low := avg(2, 30)  // 60 tasks, 2 groups
	high := avg(30, 2) // 60 tasks, 30 groups
	if high <= low {
		t.Fatalf("diversity with 30 groups (%g) not above 2 groups (%g)", high, low)
	}
}

func TestGroupMetadata(t *testing.T) {
	g := mustGen(t, Config{Seed: 3})
	groups := g.Groups(50)
	for _, grp := range groups {
		if grp.ID == "" || grp.Title == "" || grp.Requester == "" {
			t.Fatalf("incomplete metadata: %+v", grp)
		}
		if grp.Reward < 0.01 || grp.Reward > 0.13 {
			t.Fatalf("reward %g outside micro-task range", grp.Reward)
		}
		if got := grp.Keywords.Count(); got != 5 {
			t.Fatalf("group has %d keywords, want 5", got)
		}
	}
}

func TestWorkersValidAndVaried(t *testing.T) {
	g := mustGen(t, Config{Seed: 5})
	workers := g.Workers(200)
	ids := map[string]bool{}
	var alphaSum float64
	for _, w := range workers {
		if ids[w.ID] {
			t.Fatalf("duplicate worker id %s", w.ID)
		}
		ids[w.ID] = true
		if w.Keywords.Count() != 5 {
			t.Fatalf("worker has %d keywords, want 5", w.Keywords.Count())
		}
		if w.Alpha < 0 || w.Beta < 0 || math.Abs(w.Alpha+w.Beta-1) > 1e-9 {
			t.Fatalf("weights (%g,%g) not normalized", w.Alpha, w.Beta)
		}
		alphaSum += w.Alpha
	}
	if mean := alphaSum / 200; mean < 0.3 || mean > 0.7 {
		t.Fatalf("mean α = %g, want roughly centered", mean)
	}
}

func TestZipfSkewsKeywordPopularity(t *testing.T) {
	skewed := mustGen(t, Config{Seed: 11, ZipfS: 2.0})
	countTop := func(g *Generator) int {
		top := 0
		for _, grp := range g.Groups(300) {
			if grp.Keywords.Contains(0) {
				top++
			}
		}
		return top
	}
	mild := mustGen(t, Config{Seed: 11, ZipfS: 1.01})
	if countTop(skewed) <= countTop(mild) {
		t.Fatalf("stronger skew did not increase popularity of keyword 0 (%d vs %d)",
			countTop(skewed), countTop(mild))
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := mustGen(t, Config{Seed: 9}).Tasks(3, 4)
	b := mustGen(t, Config{Seed: 9}).Tasks(3, 4)
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Keywords.Equal(b[i].Keywords) {
			t.Fatalf("generation not deterministic at task %d", i)
		}
	}
}

func TestKeywordNames(t *testing.T) {
	if Keyword(0) != "survey" {
		t.Errorf("Keyword(0) = %q", Keyword(0))
	}
	if !strings.HasPrefix(Keyword(10_000), "kw") {
		t.Errorf("Keyword(10000) = %q", Keyword(10_000))
	}
}

func TestTaskRoundTrip(t *testing.T) {
	g := mustGen(t, Config{Seed: 13})
	tasks := g.Tasks(3, 5)
	var buf bytes.Buffer
	if err := WriteTasks(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTasks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tasks) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(back), len(tasks))
	}
	for i := range tasks {
		if back[i].ID != tasks[i].ID || back[i].Group != tasks[i].Group ||
			back[i].Reward != tasks[i].Reward || !back[i].Keywords.Equal(tasks[i].Keywords) {
			t.Fatalf("task %d mismatch after round trip", i)
		}
	}
}

func TestWorkerRoundTrip(t *testing.T) {
	g := mustGen(t, Config{Seed: 17})
	workers := g.Workers(8)
	var buf bytes.Buffer
	if err := WriteWorkers(&buf, workers); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorkers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(workers) {
		t.Fatalf("round trip lost workers")
	}
	for i := range workers {
		if back[i].ID != workers[i].ID || back[i].Alpha != workers[i].Alpha ||
			!back[i].Keywords.Equal(workers[i].Keywords) {
			t.Fatalf("worker %d mismatch after round trip", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadTasks(strings.NewReader(`{"id":"x"`)); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadTasks(strings.NewReader(`{"id":"x","universe":0,"keywords":[]}`)); err == nil {
		t.Error("zero universe accepted")
	}
	if _, err := ReadWorkers(strings.NewReader(`{"id":"w","universe":-3}`)); err == nil {
		t.Error("negative universe accepted")
	}
}
