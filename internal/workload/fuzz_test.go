package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTasks checks that arbitrary input never panics the JSON-lines
// task reader and that whatever parses round-trips through WriteTasks.
func FuzzReadTasks(f *testing.F) {
	f.Add(`{"id":"t1","group":"g","reward":0.05,"universe":8,"keywords":[0,3]}`)
	f.Add(`{"id":"t1","universe":1,"keywords":[]}`)
	f.Add(`{"id":"","universe":-1}`)
	f.Add(`garbage`)
	f.Add(``)
	f.Add(`{"id":"x","universe":8,"keywords":[99]}`)
	f.Fuzz(func(t *testing.T, input string) {
		tasks, err := ReadTasks(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must survive a write→read cycle unchanged.
		var buf bytes.Buffer
		if err := WriteTasks(&buf, tasks); err != nil {
			t.Fatalf("WriteTasks on parsed input: %v", err)
		}
		back, err := ReadTasks(&buf)
		if err != nil {
			t.Fatalf("ReadTasks on own output: %v", err)
		}
		if len(back) != len(tasks) {
			t.Fatalf("round trip changed count: %d -> %d", len(tasks), len(back))
		}
		for i := range tasks {
			if back[i].ID != tasks[i].ID || !back[i].Keywords.Equal(tasks[i].Keywords) {
				t.Fatalf("round trip changed task %d", i)
			}
		}
	})
}

// FuzzReadWorkers mirrors FuzzReadTasks for the worker reader.
func FuzzReadWorkers(f *testing.F) {
	f.Add(`{"id":"w1","alpha":0.5,"beta":0.5,"universe":8,"keywords":[1,2]}`)
	f.Add(`{"id":"w","universe":0}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, input string) {
		workers, err := ReadWorkers(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteWorkers(&buf, workers); err != nil {
			t.Fatalf("WriteWorkers on parsed input: %v", err)
		}
		back, err := ReadWorkers(&buf)
		if err != nil {
			t.Fatalf("ReadWorkers on own output: %v", err)
		}
		if len(back) != len(workers) {
			t.Fatalf("round trip changed count")
		}
	})
}
