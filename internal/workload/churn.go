package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/htacs/ata/internal/core"
)

// ChurnEvent is one worker availability transition in a churn trace: at
// logical event step At the worker arrives (Arrive true) or departs. A
// streaming consumer interleaves the trace with its task stream by step
// index, reproducing the dynamic worker availability the paper's
// conclusion points at ("will depend on the availability of workers").
type ChurnEvent struct {
	At     int    `json:"at"`
	Arrive bool   `json:"arrive"`
	Worker string `json:"worker"`
}

// Churn generates an arrival/departure trace for the given workers over a
// horizon of logical steps. Every worker arrives once, at a step drawn
// uniformly from the first half of the horizon (so the pool ramps up while
// tasks stream in); a departFrac fraction of them also departs at a later
// uniform step. Events are sorted by step, departures before arrivals on
// ties (a freed slot should be re-fillable by the arrival at the same
// step). Deterministic for a given generator seed and call sequence.
func (g *Generator) Churn(workers []*core.Worker, horizon int, departFrac float64) ([]ChurnEvent, error) {
	if horizon < 1 {
		return nil, fmt.Errorf("workload: churn horizon = %d", horizon)
	}
	if departFrac < 0 || departFrac > 1 {
		return nil, fmt.Errorf("workload: churn depart fraction = %g", departFrac)
	}
	events := make([]ChurnEvent, 0, len(workers)*2)
	arriveWindow := horizon/2 + 1
	for _, w := range workers {
		at := g.rng.Intn(arriveWindow)
		events = append(events, ChurnEvent{At: at, Arrive: true, Worker: w.ID})
		if g.rng.Float64() < departFrac && at+1 < horizon {
			depart := at + 1 + g.rng.Intn(horizon-at-1)
			events = append(events, ChurnEvent{At: depart, Worker: w.ID})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return !events[i].Arrive && events[j].Arrive
	})
	return events, nil
}

// WriteChurn streams churn events as JSON lines.
func WriteChurn(w io.Writer, events []ChurnEvent) error {
	enc := json.NewEncoder(w)
	for i, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("workload: encoding churn event %d: %w", i, err)
		}
	}
	return nil
}

// ReadChurn parses a trace written by WriteChurn, validating that steps
// are non-negative and monotonically non-decreasing.
func ReadChurn(r io.Reader) ([]ChurnEvent, error) {
	dec := json.NewDecoder(r)
	var out []ChurnEvent
	for {
		var ev ChurnEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("workload: decoding churn event %d: %w", len(out), err)
		}
		if ev.At < 0 {
			return nil, fmt.Errorf("workload: churn event %d has step %d", len(out), ev.At)
		}
		if ev.Worker == "" {
			return nil, fmt.Errorf("workload: churn event %d has no worker", len(out))
		}
		if n := len(out); n > 0 && out[n-1].At > ev.At {
			return nil, fmt.Errorf("workload: churn events out of order at %d (%d after %d)",
				n, ev.At, out[n-1].At)
		}
		out = append(out, ev)
	}
}
