package workload

import (
	"fmt"
	"io"
	"math/rand"

	"encoding/json"

	"github.com/htacs/ata/internal/core"
)

// GoldAnswer is one entry of a gold answer key: a task with a known
// correct option, used by the quality layer to grade workers online
// (quality.Tracker.AddGold). hta-gen emits these files with -gold-out;
// hta-server loads them with -gold.
type GoldAnswer struct {
	TaskID string `json:"task_id"`
	Answer int    `json:"answer"`
}

// Gold samples a gold answer key from a task list: each task is marked
// gold with probability rate, carrying a known answer drawn uniformly
// from [0, options). The draw is seeded, so the same invocation
// reproduces the same key.
func Gold(tasks []*core.Task, rate float64, options int, seed int64) ([]GoldAnswer, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("workload: gold rate %v outside [0, 1]", rate)
	}
	if options < 2 {
		return nil, fmt.Errorf("workload: gold options %d, need >= 2", options)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []GoldAnswer
	for _, t := range tasks {
		if rng.Float64() < rate {
			out = append(out, GoldAnswer{TaskID: t.ID, Answer: rng.Intn(options)})
		}
	}
	return out, nil
}

// WriteGold streams a gold answer key as JSON lines.
func WriteGold(w io.Writer, gold []GoldAnswer) error {
	enc := json.NewEncoder(w)
	for _, g := range gold {
		if err := enc.Encode(g); err != nil {
			return fmt.Errorf("workload: encoding gold %s: %w", g.TaskID, err)
		}
	}
	return nil
}

// ReadGold parses a key written by WriteGold, rejecting empty IDs,
// negative answers, and duplicate tasks.
func ReadGold(r io.Reader) ([]GoldAnswer, error) {
	dec := json.NewDecoder(r)
	seen := map[string]struct{}{}
	var out []GoldAnswer
	for {
		var rec GoldAnswer
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("workload: decoding gold %d: %w", len(out), err)
		}
		if rec.TaskID == "" {
			return nil, fmt.Errorf("workload: gold entry %d has no task ID", len(out))
		}
		if rec.Answer < 0 {
			return nil, fmt.Errorf("workload: gold task %q has answer %d", rec.TaskID, rec.Answer)
		}
		if _, dup := seen[rec.TaskID]; dup {
			return nil, fmt.Errorf("workload: gold task %q listed twice", rec.TaskID)
		}
		seen[rec.TaskID] = struct{}{}
		out = append(out, rec)
	}
}
