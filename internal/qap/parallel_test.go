package qap

import (
	"math/rand"
	"testing"
)

// TestMatchedEdgeWeights checks bM against the serial definition — B(k,
// mate[k]) for matched real tasks, 0 elsewhere — at several parallelism
// levels, including a mate slice shorter than N().
func TestMatchedEdgeWeights(t *testing.T) {
	div := func(k, l int) float64 {
		if k == l {
			return 0
		}
		return float64(k*7+l*3) / 100
	}
	in := tableIInstance(t, func(k, l int) float64 { return div(min(k, l), max(k, l)) })
	m := NewMapping(in)
	r := rand.New(rand.NewSource(101))

	for trial := 0; trial < 20; trial++ {
		mateLen := r.Intn(m.N() + 1)
		mate := make([]int, mateLen)
		for k := range mate {
			if r.Intn(3) == 0 {
				mate[k] = -1
			} else {
				mate[k] = r.Intn(m.NumReal())
			}
		}
		want := make([]float64, m.N())
		for k := 0; k < m.NumReal() && k < len(mate); k++ {
			if mate[k] != -1 {
				want[k] = m.Instance().Diversity(k, mate[k])
			}
		}
		for _, p := range []int{1, 2, 8} {
			got := m.MatchedEdgeWeights(mate, p)
			if len(got) != len(want) {
				t.Fatalf("trial %d p=%d: len %d, want %d", trial, p, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("trial %d p=%d: bM[%d] = %v, want %v", trial, p, k, got[k], want[k])
				}
			}
		}
	}
}
