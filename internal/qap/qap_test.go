package qap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
)

// tableIInstance reproduces Example 1 of the paper: 2 workers, 8 tasks,
// Xmax = 3, α_w1 = 0.2, β_w1 = 0.8, α_w2 = 0.6, β_w2 = 0.3, and the
// relevance values of Table I. Diversities are only needed for Example 3
// and are prescribed there.
func tableIInstance(t *testing.T, div func(k, l int) float64) *core.Instance {
	t.Helper()
	if div == nil {
		div = func(k, l int) float64 { return 0 }
	}
	rel := [][]float64{
		{0.28, 0.25, 0.2, 0.43, 0.67, 0.4, 0, 0.4},
		{0.3, 0, 0.2, 0.25, 0.25, 0, 0, 0.4},
	}
	workers := []*core.Worker{
		{ID: "w1", Alpha: 0.2, Beta: 0.8},
		{ID: "w2", Alpha: 0.6, Beta: 0.3},
	}
	in, err := core.NewCustomInstance(8, workers, 3, rel, div, true)
	if err != nil {
		t.Fatalf("NewCustomInstance: %v", err)
	}
	return in
}

// TestTableIMatrices checks matrices A and C against Figure 1.
func TestTableIMatrices(t *testing.T) {
	in := tableIInstance(t, nil)
	m := NewMapping(in)
	if m.N() != 8 {
		t.Fatalf("N = %d, want 8 (|T| = 8 >= |W|·Xmax = 6)", m.N())
	}

	// Figure 1, matrix A: two 3×3 blocks with off-diagonal 0.2 and 0.6.
	for k := 0; k < 8; k++ {
		for l := 0; l < 8; l++ {
			var want float64
			switch {
			case k == l:
				want = 0
			case k < 3 && l < 3:
				want = 0.2
			case k >= 3 && k < 6 && l >= 3 && l < 6:
				want = 0.6
			}
			if got := m.A(k, l); math.Abs(got-want) > 1e-12 {
				t.Errorf("A[%d][%d] = %g, want %g", k, l, got, want)
			}
		}
	}

	// Figure 1, matrix C: first worker's columns carry 2·0.8·rel(w1,t_k),
	// second worker's 2·0.3·rel(w2,t_k), remaining columns 0. The paper
	// calls out c_{1,1} = (Xmax−1)·β_w1·rel(w1,t1) = 2×0.8×0.28.
	if got := m.C(0, 0); math.Abs(got-2*0.8*0.28) > 1e-12 {
		t.Errorf("C[0][0] = %g, want %g", got, 2*0.8*0.28)
	}
	for k := 0; k < 8; k++ {
		for l := 0; l < 8; l++ {
			var want float64
			switch {
			case l < 3:
				want = 2 * 0.8 * in.Relevance(0, k)
			case l < 6:
				want = 2 * 0.3 * in.Relevance(1, k)
			}
			if got := m.C(k, l); math.Abs(got-want) > 1e-12 {
				t.Errorf("C[%d][%d] = %g, want %g", k, l, got, want)
			}
		}
	}
}

// TestExample2Translation follows Example 2: π swaps tasks 1 and 4
// (1-based) and is identity elsewhere; worker w1 receives {t4, t2, t3},
// worker w2 {t1, t5, t6}, and t7, t8 stay unassigned.
func TestExample2Translation(t *testing.T) {
	in := tableIInstance(t, nil)
	m := NewMapping(in)
	perm := []int{3, 1, 2, 0, 4, 5, 6, 7} // 0-based: π(0)=3, π(3)=0, rest identity
	a := m.AssignmentFromPerm(perm)
	if err := a.Validate(in); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantW1 := map[int]bool{3: true, 1: true, 2: true}
	wantW2 := map[int]bool{0: true, 4: true, 5: true}
	if len(a.Sets[0]) != 3 || len(a.Sets[1]) != 3 {
		t.Fatalf("sets = %v", a.Sets)
	}
	for _, k := range a.Sets[0] {
		if !wantW1[k] {
			t.Errorf("w1 got unexpected task %d (sets %v)", k, a.Sets)
		}
	}
	for _, k := range a.Sets[1] {
		if !wantW2[k] {
			t.Errorf("w2 got unexpected task %d (sets %v)", k, a.Sets)
		}
	}
	un := a.Unassigned(8)
	if len(un) != 2 || un[0] != 6 || un[1] != 7 {
		t.Errorf("unassigned = %v, want [6 7]", un)
	}
}

func keywordInstance(t *testing.T, r *rand.Rand, numTasks, numWorkers, xmax, universe int) *core.Instance {
	t.Helper()
	tasks := make([]*core.Task, numTasks)
	for i := range tasks {
		kw := bitset.New(universe)
		for k := 0; k < universe; k++ {
			if r.Intn(4) == 0 {
				kw.Add(k)
			}
		}
		tasks[i] = &core.Task{ID: "t", Keywords: kw}
	}
	workers := make([]*core.Worker, numWorkers)
	for q := range workers {
		kw := bitset.New(universe)
		for k := 0; k < universe; k++ {
			if r.Intn(4) == 0 {
				kw.Add(k)
			}
		}
		alpha := r.Float64()
		workers[q] = &core.Worker{ID: "w" + string(rune('a'+q)), Alpha: alpha, Beta: 1 - alpha, Keywords: kw}
	}
	in, err := core.NewInstance(tasks, workers, xmax, metric.Jaccard{})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return in
}

// TestEquation8 verifies that the HTA objective of the translated
// assignment equals the MAXQAP objective of the permutation whenever every
// worker ends up with exactly Xmax tasks (|T| >= |W|·Xmax, full slots).
func TestEquation8(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		numWorkers := 1 + r.Intn(3)
		xmax := 2 + r.Intn(3)
		numTasks := numWorkers*xmax + r.Intn(4)
		in := keywordInstance(t, r, numTasks, numWorkers, xmax, 12)
		m := NewMapping(in)
		perm := r.Perm(m.N())
		hta := in.Objective(m.AssignmentFromPerm(perm))
		qapObj := m.Objective(perm)
		if math.Abs(hta-qapObj) > 1e-9 {
			t.Fatalf("trial %d: HTA objective %g != MAXQAP objective %g", trial, hta, qapObj)
		}
	}
}

// TestObjectiveMatchesDense cross-checks the clique-grouped objective
// against the literal O(n²) double sum.
func TestObjectiveMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		numWorkers := 1 + r.Intn(3)
		xmax := 2 + r.Intn(3)
		numTasks := 2 + r.Intn(numWorkers*xmax+4)
		in := keywordInstance(t, r, numTasks, numWorkers, xmax, 10)
		m := NewMapping(in)
		perm := r.Perm(m.N())
		fast, dense := m.Objective(perm), m.ObjectiveDense(perm)
		if math.Abs(fast-dense) > 1e-9 {
			t.Fatalf("trial %d: Objective %g != ObjectiveDense %g", trial, fast, dense)
		}
	}
}

// TestPaddingWhenFewTasks checks the virtual-task padding: with fewer tasks
// than slots, N() grows to |W|·Xmax, padding has zero B and C, and
// translated assignments never contain virtual tasks.
func TestPaddingWhenFewTasks(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	in := keywordInstance(t, r, 4, 2, 3, 10) // 4 tasks, 6 slots
	m := NewMapping(in)
	if m.N() != 6 {
		t.Fatalf("N = %d, want 6", m.N())
	}
	if m.NumReal() != 4 {
		t.Fatalf("NumReal = %d, want 4", m.NumReal())
	}
	for l := 0; l < 6; l++ {
		if m.B(4, l) != 0 || m.B(l, 5) != 0 {
			t.Fatalf("virtual task has nonzero diversity")
		}
		if m.C(5, l) != 0 {
			t.Fatalf("virtual task has nonzero relevance profit")
		}
	}
	perm := r.Perm(6)
	a := m.AssignmentFromPerm(perm)
	if err := a.Validate(in); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, set := range a.Sets {
		for _, k := range set {
			if k >= 4 {
				t.Fatalf("virtual task %d leaked into assignment %v", k, a.Sets)
			}
		}
	}
}

func TestWorkerOfAndDegA(t *testing.T) {
	in := tableIInstance(t, nil)
	m := NewMapping(in)
	cases := []struct {
		v, worker int
		degA      float64
	}{
		{0, 0, 2 * 0.2}, {2, 0, 2 * 0.2},
		{3, 1, 2 * 0.6}, {5, 1, 2 * 0.6},
		{6, -1, 0}, {7, -1, 0},
	}
	for _, c := range cases {
		if got := m.WorkerOf(c.v); got != c.worker {
			t.Errorf("WorkerOf(%d) = %d, want %d", c.v, got, c.worker)
		}
		if got := m.DegA(c.v); math.Abs(got-c.degA) > 1e-12 {
			t.Errorf("DegA(%d) = %g, want %g", c.v, got, c.degA)
		}
	}
}

// TestClassMetadata: the column-class view of the A side — one class per
// worker clique plus the isolated block — matches WorkerOf vertex by
// vertex, and the capacities are the class sizes the collapsed LSAP needs.
func TestClassMetadata(t *testing.T) {
	in := tableIInstance(t, nil)
	m := NewMapping(in) // 8 tasks, 2 workers × Xmax 3 → n = 8, isolated 2
	if got, want := m.NumClasses(), 3; got != want {
		t.Fatalf("NumClasses = %d, want %d", got, want)
	}
	caps := m.ClassCapacities()
	if len(caps) != 3 || caps[0] != 3 || caps[1] != 3 || caps[2] != 2 {
		t.Fatalf("ClassCapacities = %v, want [3 3 2]", caps)
	}
	sum := 0
	for v := 0; v < m.N(); v++ {
		cl := m.ClassOf(v)
		if w := m.WorkerOf(v); w >= 0 {
			if cl != w {
				t.Errorf("ClassOf(%d) = %d, want worker %d", v, cl, w)
			}
		} else if cl != in.NumWorkers() {
			t.Errorf("ClassOf(%d) = %d, want isolated class %d", v, cl, in.NumWorkers())
		}
	}
	counts := make([]int, m.NumClasses())
	for v := 0; v < m.N(); v++ {
		counts[m.ClassOf(v)]++
	}
	for l, c := range counts {
		if c != caps[l] {
			t.Errorf("class %d has %d vertices, capacity says %d", l, c, caps[l])
		}
		sum += c
	}
	if sum != m.N() {
		t.Errorf("class sizes sum to %d, want n = %d", sum, m.N())
	}
}

// TestPermRoundTrip: translating a full assignment to a permutation and
// back must reproduce the assignment (as sets).
func TestPermRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		numWorkers := 1 + r.Intn(3)
		xmax := 2 + r.Intn(3)
		numTasks := numWorkers*xmax + r.Intn(5)
		in := keywordInstance(t, r, numTasks, numWorkers, xmax, 10)
		m := NewMapping(in)
		// Build a full random assignment.
		perm := r.Perm(numTasks)
		a := core.NewAssignment(numWorkers)
		idx := 0
		for q := 0; q < numWorkers; q++ {
			for x := 0; x < xmax; x++ {
				a.Sets[q] = append(a.Sets[q], perm[idx])
				idx++
			}
		}
		back := m.AssignmentFromPerm(m.PermFromAssignment(a))
		for q := range a.Sets {
			if !sameSet(a.Sets[q], back.Sets[q]) {
				t.Fatalf("trial %d worker %d: %v -> %v", trial, q, a.Sets[q], back.Sets[q])
			}
		}
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

// TestExactQAPEqualsExactHTA is the deepest Equation 8 check: for full
// instances (|T| = |W|·Xmax, every task assigned by an optimal solution),
// the optimal MAXQAP permutation value must equal the optimal HTA
// objective found by assignment-side enumeration.
func TestExactQAPEqualsExactHTA(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		numWorkers := 1 + r.Intn(2)
		xmax := 2 + r.Intn(2)
		numTasks := numWorkers * xmax
		if numTasks > 8 {
			continue
		}
		in := keywordInstance(t, r, numTasks, numWorkers, xmax, 10)
		m := NewMapping(in)
		_, qapOpt := m.ExactSmall()

		// Assignment-side exhaustive optimum: every task to some worker or
		// unassigned, capacity-respecting.
		htaOpt := exactHTA(in)
		if math.Abs(qapOpt-htaOpt) > 1e-9 {
			t.Fatalf("trial %d: exact MAXQAP %g != exact HTA %g", trial, qapOpt, htaOpt)
		}
	}
}

// exactHTA enumerates assignments directly (the same search solver.Exact
// performs, re-implemented locally to keep this package free of a solver
// dependency).
func exactHTA(in *core.Instance) float64 {
	numTasks, numWorkers := in.NumTasks(), in.NumWorkers()
	choice := make([]int, numTasks)
	load := make([]int, numWorkers)
	best := math.Inf(-1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == numTasks {
			a := core.NewAssignment(numWorkers)
			for t, q := range choice {
				if q < numWorkers {
					a.Sets[q] = append(a.Sets[q], t)
				}
			}
			if v := in.Objective(a); v > best {
				best = v
			}
			return
		}
		for q := 0; q <= numWorkers; q++ {
			if q < numWorkers {
				if load[q] == in.Xmax {
					continue
				}
				load[q]++
			}
			choice[k] = q
			recurse(k + 1)
			if q < numWorkers {
				load[q]--
			}
		}
	}
	recurse(0)
	return best
}

func TestExactSmallPanicsOnLargeN(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	in := keywordInstance(t, r, 12, 2, 5, 10)
	m := NewMapping(in)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.ExactSmall()
}

// Property: the MAXQAP objective never changes when two tasks assigned to
// the same worker swap their A-vertices.
func TestQuickObjectiveSwapInvariantWithinClique(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numWorkers := 1 + r.Intn(2)
		xmax := 2 + r.Intn(2)
		numTasks := numWorkers*xmax + r.Intn(3)
		tsk := make([]*core.Task, numTasks)
		for i := range tsk {
			kw := bitset.New(8)
			for k := 0; k < 8; k++ {
				if r.Intn(2) == 0 {
					kw.Add(k)
				}
			}
			tsk[i] = &core.Task{Keywords: kw}
		}
		ws := make([]*core.Worker, numWorkers)
		for q := range ws {
			alpha := r.Float64()
			ws[q] = &core.Worker{Alpha: alpha, Beta: 1 - alpha, Keywords: bitset.FromIndices(8, 0)}
		}
		in, err := core.NewInstance(tsk, ws, xmax, metric.Jaccard{})
		if err != nil {
			return false
		}
		m := NewMapping(in)
		perm := r.Perm(m.N())
		before := m.Objective(perm)
		// Find two tasks in the same clique and swap their vertices.
		for k := 0; k < len(perm); k++ {
			for l := k + 1; l < len(perm); l++ {
				qk, ql := m.WorkerOf(perm[k]), m.WorkerOf(perm[l])
				if qk >= 0 && qk == ql {
					perm[k], perm[l] = perm[l], perm[k]
					after := m.Objective(perm)
					return math.Abs(before-after) < 1e-9
				}
			}
		}
		return true // no same-clique pair; vacuously fine
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
