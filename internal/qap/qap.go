// Package qap implements the mapping between HTA and the Maximum Quadratic
// Assignment Problem (MAXQAP) described in Sections III-B and IV-A of the
// paper. The mapping is the backbone of both approximation algorithms and
// of the Max-SNP-hardness proof.
//
// Given an HTA instance with tasks T, workers W and capacity Xmax, define
// n = max(|T|, |W|·Xmax) vertices and three n×n matrices:
//
//   - A: adjacency matrix of |W| disjoint cliques of Xmax vertices each
//     (one clique per worker, edges weighted α_w) plus isolated vertices
//     (Equation 4);
//   - B: complete graph over tasks with edges weighted by pairwise task
//     diversity d(t_k, t_l) (Equation 5);
//   - C: linear profits c[k][l] = β_q·rel(w_q, t_k)·(Xmax−1) when column l
//     lies in worker q's clique, 0 otherwise (Equation 6; the paper's
//     "l ≤ |T|−|W|·Xmax" guard is a typo for "l ≤ |W|·Xmax", as Figure 1
//     and Example 1 show).
//
// A permutation π assigning task k to A-vertex π(k) then has MAXQAP
// objective Σ_{k≠l} a[π(k)][π(l)]·b[k][l] + Σ_k c[k][π(k)], which equals
// the HTA objective Σ_w motiv(T_w, w) of the induced assignment
// T_wq = {t_k : ⌈π(k)/Xmax⌉ = q} (Equations 7–8) whenever every worker
// receives exactly Xmax real tasks.
//
// When |T| < |W|·Xmax, Mapping pads the task side with virtual tasks at
// distance 0 from everything and relevance 0, so every solver works on a
// square problem; virtual tasks are dropped when translating back. Workers
// then receive fewer than Xmax real tasks and the equality of Equation 8
// becomes "MAXQAP objective ≥ HTA objective" because the mapping's linear
// term is normalized by (Xmax−1) while motiv uses (|T'|−1).
package qap

import (
	"fmt"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/par"
)

// Mapping is the MAXQAP view of an HTA instance. It stores only O(|T| + |W|)
// state; the matrices A, B, C are exposed as functions computed on demand.
type Mapping struct {
	inst *core.Instance
	n    int // number of vertices = max(|T|, |W|·Xmax)
}

// NewMapping builds the MAXQAP view of an instance.
func NewMapping(in *core.Instance) *Mapping {
	n := in.NumTasks()
	if slots := in.NumWorkers() * in.Xmax; slots > n {
		n = slots
	}
	return &Mapping{inst: in, n: n}
}

// Instance returns the underlying HTA instance.
func (m *Mapping) Instance() *core.Instance { return m.inst }

// N returns the number of vertices of the padded square problem.
func (m *Mapping) N() int { return m.n }

// NumReal returns |T|, the number of real (non-virtual) tasks. Task indices
// ≥ NumReal() are padding.
func (m *Mapping) NumReal() int { return m.inst.NumTasks() }

// WorkerOf returns the worker owning A-vertex v, or -1 when v is isolated
// (beyond the |W|·Xmax clique block).
func (m *Mapping) WorkerOf(v int) int {
	q := v / m.inst.Xmax
	if q >= m.inst.NumWorkers() {
		return -1
	}
	return q
}

// NumClasses returns |W|+1: the A-side vertices fall into one equivalence
// class per worker clique plus one for the isolated (zero-degree) block.
// Vertices of a class are interchangeable in every solver-facing quantity
// (DegA, profits, assignment semantics), which is what lets the auxiliary
// LSAP collapse its columns — see lsap.ColumnClassed.
func (m *Mapping) NumClasses() int { return m.inst.NumWorkers() + 1 }

// ClassOf returns the column class of A-vertex v: its worker index, or
// NumWorkers for the isolated block (WorkerOf's -1).
func (m *Mapping) ClassOf(v int) int {
	if q := m.WorkerOf(v); q >= 0 {
		return q
	}
	return m.inst.NumWorkers()
}

// ClassCapacities returns the vertex count of each class — Xmax per worker
// clique and n − |W|·Xmax for the isolated block — i.e. the capacity vector
// the class-collapsed LSAP solver needs. The slice is freshly allocated.
func (m *Mapping) ClassCapacities() []int {
	numWorkers := m.inst.NumWorkers()
	caps := make([]int, numWorkers+1)
	for q := 0; q < numWorkers; q++ {
		caps[q] = m.inst.Xmax
	}
	caps[numWorkers] = m.n - numWorkers*m.inst.Xmax
	return caps
}

// A returns a[k][l] per Equation 4: α_q when k and l are distinct vertices
// of the same worker clique, 0 otherwise.
func (m *Mapping) A(k, l int) float64 {
	if k == l {
		return 0
	}
	q := m.WorkerOf(l)
	if q < 0 || m.WorkerOf(k) != q {
		return 0
	}
	return m.inst.Workers[q].Alpha
}

// B returns b[k][l] per Equation 5: the pairwise task diversity, with
// virtual (padding) tasks at distance 0 from everything.
func (m *Mapping) B(k, l int) float64 {
	real := m.NumReal()
	if k >= real || l >= real {
		return 0
	}
	return m.inst.Diversity(k, l)
}

// C returns c[k][l] per Equation 6: β_q·rel(w_q, t_k)·(Xmax−1) when column
// l belongs to worker q's clique, 0 otherwise (and 0 for virtual tasks k).
func (m *Mapping) C(k, l int) float64 {
	q := m.WorkerOf(l)
	if q < 0 || k >= m.NumReal() {
		return 0
	}
	w := m.inst.Workers[q]
	return w.Beta * m.inst.Relevance(q, k) * float64(m.inst.Xmax-1)
}

// DegA returns Σ_l a[v][l], the weighted degree of A-vertex v: for a clique
// vertex of worker q it is (Xmax−1)·α_q, for isolated vertices 0. HTA-APP
// uses it to build the auxiliary LSAP profits (Line 4 of Algorithm 1).
func (m *Mapping) DegA(v int) float64 {
	q := m.WorkerOf(v)
	if q < 0 {
		return 0
	}
	return float64(m.inst.Xmax-1) * m.inst.Workers[q].Alpha
}

// MatchedEdgeWeights returns bM, the matched-edge weight of every vertex of
// the padded problem: bM[k] = B(k, mate[k]) when real task k is matched in
// M_B, 0 for unmatched vertices and virtual padding. It is the per-task
// half of the auxiliary LSAP profits f[k][l] = bM(t_k)·degA(l) + c[k][l]
// (Lines 3–10 of Algorithm 1), computed with p goroutines (p >= 1 literal,
// p <= 0 → runtime.NumCPU()). mate may be shorter than N(); missing entries
// are treated as unmatched.
func (m *Mapping) MatchedEdgeWeights(mate []int, p int) []float64 {
	bM := make([]float64, m.n)
	real := m.NumReal()
	if real > len(mate) {
		real = len(mate)
	}
	par.Do(real, p, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			if mateK := mate[k]; mateK != -1 {
				bM[k] = m.inst.Diversity(k, mateK)
			}
		}
	})
	return bM
}

// Objective evaluates the MAXQAP objective for permutation π, where π[k] is
// the A-vertex assigned to task k:
//
//	Σ_{k≠l} a[π(k)][π(l)]·b[k][l] + Σ_k c[k][π(k)]
//
// The quadratic term is accumulated per worker clique in O(|T| + Σ_q X²)
// instead of O(n²).
func (m *Mapping) Objective(perm []int) float64 {
	// Group real tasks by the worker of their assigned vertex.
	byWorker := make([][]int, m.inst.NumWorkers())
	var total float64
	for k, v := range perm {
		q := m.WorkerOf(v)
		if q < 0 {
			continue
		}
		if k < m.NumReal() {
			byWorker[q] = append(byWorker[q], k)
			total += m.C(k, v)
		}
	}
	for q, tasks := range byWorker {
		alpha := m.inst.Workers[q].Alpha
		for i := 1; i < len(tasks); i++ {
			for j := 0; j < i; j++ {
				// a[π(k)][π(l)]·b[k][l] counted for (k,l) and (l,k).
				total += 2 * alpha * m.inst.Diversity(tasks[i], tasks[j])
			}
		}
	}
	return total
}

// ObjectiveDense evaluates the MAXQAP objective by the literal double sum
// over all vertex pairs. O(n²); used by tests to validate Objective.
func (m *Mapping) ObjectiveDense(perm []int) float64 {
	var total float64
	for k := range perm {
		for l := range perm {
			if k != l {
				total += m.A(perm[k], perm[l]) * m.B(k, l)
			}
		}
		total += m.C(k, perm[k])
	}
	return total
}

// AssignmentFromPerm translates a permutation into an HTA assignment via
// Equation 7: worker q receives the real tasks whose assigned vertex lies
// in q's clique. perm must be a permutation of {0,…,N()−1} over task
// indices (π[k] = vertex of task k).
func (m *Mapping) AssignmentFromPerm(perm []int) *core.Assignment {
	a := core.NewAssignment(m.inst.NumWorkers())
	for k, v := range perm {
		if k >= m.NumReal() {
			continue
		}
		if q := m.WorkerOf(v); q >= 0 {
			a.Sets[q] = append(a.Sets[q], k)
		}
	}
	return a
}

// ExactSmall finds a permutation maximizing the MAXQAP objective by
// exhaustive enumeration over all N()! permutations. It exists to validate
// the Equation 8 equivalence against solver-side exact enumeration and
// panics for N() > 9.
func (m *Mapping) ExactSmall() ([]int, float64) {
	n := m.n
	if n > 9 {
		panic(fmt.Sprintf("qap: ExactSmall limited to N <= 9, got %d", n))
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := append([]int(nil), perm...)
	bestVal := m.Objective(perm)
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			if v := m.Objective(perm); v > bestVal {
				bestVal = v
				copy(best, perm)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best, bestVal
}

// PermFromAssignment builds a permutation consistent with Equation 7 from
// an assignment: each worker's tasks occupy that worker's clique vertices
// in order; unassigned and virtual tasks fill the remaining vertices. It is
// the inverse direction used by tests for the Equation 8 equivalence.
func (m *Mapping) PermFromAssignment(a *core.Assignment) []int {
	perm := make([]int, m.n)
	for i := range perm {
		perm[i] = -1
	}
	vertexUsed := make([]bool, m.n)
	for q, set := range a.Sets {
		base := q * m.inst.Xmax
		for i, k := range set {
			perm[k] = base + i
			vertexUsed[base+i] = true
		}
	}
	// Fill unassigned tasks (and virtual padding) with the free vertices.
	free := make([]int, 0, m.n)
	for v := 0; v < m.n; v++ {
		if !vertexUsed[v] {
			free = append(free, v)
		}
	}
	// Prefer isolated vertices for unassigned tasks so they do not leak
	// into worker cliques; isolated vertices sort last, so walk free from
	// the back.
	fi := len(free) - 1
	for k := range perm {
		if perm[k] == -1 {
			perm[k] = free[fi]
			fi--
		}
	}
	return perm
}
