package qap_test

import (
	"fmt"
	"log"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/qap"
)

// ExampleNewMapping rebuilds the paper's Example 1 (Table I / Figure 1):
// two workers, eight tasks, Xmax = 3, and reads matrix entries of the
// MAXQAP view — including the c₁,₁ = 2·0.8·0.28 entry the paper calls out.
func ExampleNewMapping() {
	rel := [][]float64{
		{0.28, 0.25, 0.2, 0.43, 0.67, 0.4, 0, 0.4},
		{0.3, 0, 0.2, 0.25, 0.25, 0, 0, 0.4},
	}
	workers := []*core.Worker{
		{ID: "w1", Alpha: 0.2, Beta: 0.8},
		{ID: "w2", Alpha: 0.6, Beta: 0.3},
	}
	noDiv := func(k, l int) float64 { return 0 }
	in, err := core.NewCustomInstance(8, workers, 3, rel, noDiv, true)
	if err != nil {
		log.Fatal(err)
	}
	m := qap.NewMapping(in)
	fmt.Printf("vertices: %d (8 tasks, 2 cliques of 3 + 2 isolated)\n", m.N())
	fmt.Printf("A[0][1] = %.1f (worker w1 clique edge, α)\n", m.A(0, 1))
	fmt.Printf("A[3][4] = %.1f (worker w2 clique edge, α)\n", m.A(3, 4))
	fmt.Printf("C[0][0] = %.3f (= 2·0.8·0.28)\n", m.C(0, 0))
	fmt.Printf("DegA(0) = %.1f (= (Xmax−1)·α_w1)\n", m.DegA(0))
	// Output:
	// vertices: 8 (8 tasks, 2 cliques of 3 + 2 isolated)
	// A[0][1] = 0.2 (worker w1 clique edge, α)
	// A[3][4] = 0.6 (worker w2 clique edge, α)
	// C[0][0] = 0.448 (= 2·0.8·0.28)
	// DegA(0) = 0.4 (= (Xmax−1)·α_w1)
}
