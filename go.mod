module github.com/htacs/ata

go 1.22
