# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short test-race test-shard test-quality vet bench bench-pr5 bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-pr10 smoke-cluster experiments live crowd clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-check the parallel diversity kernel and everything it touches.
test-race:
	$(GO) test -race ./internal/...

# The sharded-engine conservation and determinism properties, repeated
# under the race detector (mirrors the dedicated CI step).
test-shard:
	$(GO) test -race -count 2 ./internal/shard -run 'TestConservationUnderConcurrentChurn|TestOneShardDeterminism'

# The quality layer (aggregation, gold grading, reputation) plus its
# engine/tracker integration properties, under the race detector.
test-quality:
	$(GO) test -race ./internal/quality

# Regenerate the shard throughput report (BENCH_PR5.json).
bench-pr5:
	$(GO) run ./cmd/hta-bench -fig pr5 -json BENCH_PR5.json

# Regenerate the incremental hot-path report (BENCH_PR6.json): the pr5
# churn workload vs the recorded pr5 single-shard baseline.
bench-pr6:
	$(GO) run ./cmd/hta-bench -fig pr6 -runs 5 -json BENCH_PR6.json

# Regenerate the cluster gateway report (BENCH_PR7.json): 1/2/4 nodes
# over real loopback HTTP, batched frames vs the per-op control.
bench-pr7:
	$(GO) run ./cmd/hta-bench -fig pr7 -json BENCH_PR7.json

# Regenerate the quality/trust report (BENCH_PR8.json): majority vs
# accuracy-weighted vs EM aggregation at k=1/3/5 under a 40% spammy crowd.
bench-pr8:
	$(GO) run ./cmd/hta-bench -fig pr8 -json BENCH_PR8.json

# Regenerate the cluster observability overhead report (BENCH_PR9.json):
# the pr7 gateway workload with federated metrics + 1/16 tracing + ops
# journals vs all of it disabled, against the 2% budget.
bench-pr9:
	$(GO) run ./cmd/hta-bench -fig pr9 -runs 5 -gate -json BENCH_PR9.json

# Regenerate the predictive-scheduling report (BENCH_PR10.json):
# deadline-miss rate of predictive vs reactive rebalancing on the
# bursty-churn deadline workload, gated on predictive winning.
bench-pr10:
	$(GO) run ./cmd/hta-bench -fig pr10 -runs 5 -gate -json BENCH_PR10.json

# The multi-process cluster smoke: 3 hta-server nodes + a gateway on
# ephemeral ports, churn replay, conservation, clean SIGTERM shutdown.
smoke-cluster:
	$(GO) test ./cmd/hta-server -run TestClusterSmokeMultiProcess -v

bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

# Regenerate every offline figure at laptop scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/hta-bench -fig 2a
	$(GO) run ./cmd/hta-bench -fig 2b
	$(GO) run ./cmd/hta-bench -fig 2c
	$(GO) run ./cmd/hta-bench -fig 3
	$(GO) run ./cmd/hta-bench -fig obj
	$(GO) run ./cmd/hta-bench -fig bg

# The online study (Figures 5a-5c) with the paper's selection pipeline.
live:
	$(GO) run ./cmd/hta-live -sessions 20 -filtered -chart

# The live deployment over real HTTP with simulated workers.
crowd:
	$(GO) run ./cmd/hta-crowd -workers 8

clean:
	$(GO) clean ./...
