// Command hta-bench regenerates the paper's offline experiments
// (Section V-B): Figure 2a (response time vs |T| with the matching/LSAP
// split), Figure 2b (objective value vs |T|), Figure 2c (response time vs
// |W|) and Figure 3 (response time vs task diversity).
//
// Usage:
//
//	hta-bench -fig 2a [-scale 0.1] [-runs 3] [-seed 1] [-xmax 20] [-skip-app]
//	hta-bench -compare [-threshold 0.10] BENCH_old.json BENCH_new.json
//
// Scale 1.0 reproduces the paper's sizes (|T| up to 10,000); the default
// 0.1 finishes each sweep in seconds on a laptop while preserving the
// curves' shapes.
//
// -compare diffs every *_ns measurement shared by two bench report JSON
// files and exits non-zero if any slowed down by more than -threshold
// (relative, default 0.10 = +10%) — the CI regression gate.
//
// -fig pr4 measures the request-scoped tracing layer's overhead (off vs
// 1/16 head sampling vs always-on) on the pr2 solver workload; with
// -trace-out the sweep also writes one fully-recorded solve as Chrome
// trace-event JSON, loadable in Perfetto.
//
// -fig pr5 measures the sharded streaming engine's event throughput at
// 1/2/4/8 shards on a churn-laden complete-dominated workload with the
// total buffer capacity fixed across shard counts (BENCH_PR5.json).
//
// -fig pr6 re-runs the pr5 workload on the incremental hot path and
// reports the single-shard speedup against the pre-optimisation baseline
// loaded from -baseline (default BENCH_PR5.json); with -gate it exits
// non-zero when the speedup misses -min-speedup (BENCH_PR6.json).
//
// -fig pr7 measures the multi-node cluster gateway at 1/2/4 single-shard
// nodes over real loopback HTTP, batched frames vs a MaxBatch=1 per-op
// control, with total buffer capacity fixed across node counts; with
// -gate it exits non-zero when 4 nodes miss the 2x aggregate target or
// batching loses to the control (BENCH_PR7.json).
//
// -fig pr8 measures answer quality vs redundancy k under a 40% spammy
// crowd: gold grades drive online accuracy estimates and quarantines, and
// accuracy-weighted and EM aggregation are scored against plain majority
// on identical vote sets; with -gate it exits non-zero when either
// trust-aware aggregator fails to beat majority at k=3 (BENCH_PR8.json).
//
// -fig pr9 measures the cluster observability stack's overhead on the pr7
// gateway workload at 3 nodes: federated metrics + 1/16 head sampling
// with cross-node spans + ops journals, against all of it disabled; with
// -gate it exits non-zero when the overhead exceeds the 2% budget
// (BENCH_PR9.json).
//
// -fig pr10 measures the deadline-miss rate of predictive vs reactive
// rebalancing on a bursty-churn deadline workload (every task deadlined,
// the shard-0 worker cohort departing and returning on a cycle); with
// -gate it exits non-zero unless predictive strictly beats reactive
// (BENCH_PR10.json).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/htacs/ata/internal/experiments"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/trace"
)

// runCompare is the -compare mode: exit 0 when new stays within
// threshold of old on every shared *_ns measurement, 1 on regression.
func runCompare(oldPath, newPath string, threshold float64) error {
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newData, err := os.ReadFile(newPath)
	if err != nil {
		return err
	}
	deltas, missing, regressed, err := experiments.CompareBenchJSON(oldData, newData, threshold)
	if err != nil {
		return err
	}
	fmt.Printf("bench comparison: %s -> %s (threshold +%.0f%%)\n\n", oldPath, newPath, 100*threshold)
	if err := experiments.RenderBenchDeltas(os.Stdout, deltas, missing, threshold); err != nil {
		return err
	}
	if regressed {
		os.Exit(1)
	}
	return nil
}

func main() {
	fig := flag.String("fig", "2a", "figure to regenerate: 2a, 2b, 2c, 3, obj, bg, pr2, pr3, pr4, pr5, pr6, pr7, pr8, pr9 or pr10")
	scale := flag.Float64("scale", 0.1, "size multiplier on the paper's setup (1.0 = paper scale)")
	runs := flag.Int("runs", 3, "measurement runs to average (paper: 10)")
	seed := flag.Int64("seed", 1, "random seed")
	xmax := flag.Int("xmax", 20, "per-worker capacity Xmax")
	skipAPP := flag.Bool("skip-app", false, "skip the O(|T|^3) HTA-APP runs")
	parallel := flag.Int("parallel", 0,
		"diversity-kernel parallelism: 0 = serial (paper's path), N > 0 = N goroutines, -1 = all cores; results are bit-identical")
	format := flag.String("format", "table", "output format: table or csv")
	jsonPath := flag.String("json", "", "with a -fig prN report: also write it as JSON to this path (e.g. BENCH_PR2.json)")
	traceOut := flag.String("trace-out", "", "with -fig pr4: write a sample solver trace as Chrome trace-event JSON to this path")
	baselinePath := flag.String("baseline", "BENCH_PR5.json", "with -fig pr6: bench JSON whose shards=1 point is the speedup baseline")
	minSpeedup := flag.Float64("min-speedup", experiments.DefaultPR6Target, "with -fig pr6 -gate: required single-shard speedup over -baseline")
	gate := flag.Bool("gate", false, "with -fig pr6: exit 1 when the speedup misses -min-speedup (the CI gate)")
	compareMode := flag.Bool("compare", false, "compare two bench report JSON files (old new); exit 1 on regression beyond -threshold")
	threshold := flag.Float64("threshold", 0.10, "with -compare: relative slowdown tolerated per *_ns measurement")
	metricsAddr := flag.String("metrics", "",
		"serve the obs registry on this address (/metrics, /healthz, /debug/pprof) while the sweep runs; empty disables")
	flag.Parse()

	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "hta-bench: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "hta-bench:", err)
			os.Exit(1)
		}
		return
	}

	// The side listener is tied to main's lifetime: cancelling the context
	// shuts the server down and releases the port (no leaked goroutine).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *metricsAddr != "" {
		mux := obs.Default().SideMux()
		trace.RegisterDebug(mux, trace.Default())
		go func() {
			if err := obs.Default().ServeUntil(ctx, *metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "hta-bench: metrics:", err)
			}
		}()
	}
	if *format != "table" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "hta-bench: unknown format %q\n", *format)
		os.Exit(2)
	}
	asCSV := *format == "csv"

	opts := experiments.Options{
		Scale: *scale, Runs: *runs, Seed: *seed, Xmax: *xmax, SkipAPP: *skipAPP,
		Parallelism: *parallel,
	}
	start := time.Now()
	var err error
	switch *fig {
	case "2a":
		err = render(experiments.SweepTasks, opts, "time", asCSV,
			"Figure 2a: response time vs number of tasks (|W| = 200·scale, Xmax = %d)")
	case "2b":
		err = render(experiments.SweepTasks, opts, "objective", asCSV,
			"Figure 2b: objective function value vs number of tasks (|W| = 200·scale, Xmax = %d)")
	case "2c":
		err = render(experiments.SweepWorkers, opts, "time", asCSV,
			"Figure 2c: response time vs number of workers (|T| = 8000·scale, Xmax = %d)")
	case "3":
		err = render(experiments.SweepGroups, opts, "time", asCSV,
			"Figure 3: effect of task diversity (|T| = 10000·scale, |W| = 300·scale, Xmax = %d)")
	case "obj":
		// Not a paper figure: the Figure 2b comparison extended to every
		// solver in the repository.
		err = render(experiments.SweepObjective, opts, "objective", asCSV,
			"Solver ablation: objective value across all algorithms (Xmax = %d)")
	case "bg":
		// Not a paper figure: quantifies the Section V-A deployment claim
		// that HTA-GRE can prepare the next round in the background.
		fmt.Printf("Background-assignment check: HTA-GRE iteration latency vs worker batch time (Xmax = %d)\n\n", opts.Xmax)
		var rows []experiments.LatencyRow
		rows, err = experiments.SweepIterationLatency(opts)
		if err == nil {
			err = experiments.RenderLatency(os.Stdout, rows)
		}
	case "pr2":
		// Not a paper figure: the before/after report of the PR 2 LSAP
		// class collapse (dense Hungarian → capacitated class-level
		// Hungarian) plus the precompute gating fix.
		fmt.Printf("PR 2 report: class-collapsed exact LSAP + gated precompute (Xmax = %d)\n\n", opts.Xmax)
		var report *experiments.PR2Report
		report, err = experiments.SweepPR2(opts)
		if err == nil {
			err = report.RenderPR2(os.Stdout)
		}
		if err == nil && *jsonPath != "" {
			var f *os.File
			if f, err = os.Create(*jsonPath); err == nil {
				err = report.WritePR2JSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
	case "pr3":
		// Not a paper figure: the observability-layer overhead report —
		// the -fig pr2 solver workload with telemetry enabled vs
		// obs.SetEnabled(false), against the 2% budget.
		fmt.Printf("PR 3 report: obs instrumentation overhead on the pr2 solver workload (Xmax = %d)\n\n", opts.Xmax)
		var report *experiments.PR3Report
		report, err = experiments.SweepPR3(opts)
		if err == nil {
			err = report.RenderPR3(os.Stdout)
		}
		if err == nil && *jsonPath != "" {
			var f *os.File
			if f, err = os.Create(*jsonPath); err == nil {
				err = report.WritePR3JSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
	case "pr4":
		// Not a paper figure: the tracing-layer overhead report — the
		// -fig pr2 solver workload under a disabled recorder, 1/16 head
		// sampling, and always-on tracing, against the 2% budget.
		fmt.Printf("PR 4 report: request-scoped tracing overhead on the pr2 solver workload (Xmax = %d)\n\n", opts.Xmax)
		var report *experiments.PR4Report
		var sample []*trace.Trace
		report, sample, err = experiments.SweepPR4(opts)
		if err == nil {
			err = report.RenderPR4(os.Stdout)
		}
		if err == nil && *jsonPath != "" {
			var f *os.File
			if f, err = os.Create(*jsonPath); err == nil {
				err = report.WritePR4JSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
		if err == nil && *traceOut != "" {
			if len(sample) == 0 {
				err = fmt.Errorf("pr4 sweep retained no sample trace for -trace-out")
			} else {
				var f *os.File
				if f, err = os.Create(*traceOut); err == nil {
					err = trace.WriteChrome(f, sample)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
					if err == nil {
						fmt.Printf("\nwrote sample solver trace to %s (load it in Perfetto)\n", *traceOut)
					}
				}
			}
		}
	case "pr5":
		// Not a paper figure: the sharded streaming engine's throughput
		// scaling — the same churn workload at 1/2/4/8 shards with total
		// buffer capacity held constant, against the 2.5x target.
		fmt.Printf("PR 5 report: sharded streaming engine event throughput (total buffer fixed across shard counts)\n\n")
		var report *experiments.PR5Report
		report, err = experiments.SweepPR5(opts)
		if err == nil {
			err = report.RenderPR5(os.Stdout)
		}
		if err == nil && *jsonPath != "" {
			var f *os.File
			if f, err = os.Create(*jsonPath); err == nil {
				err = report.WritePR5JSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
	case "pr6":
		// Not a paper figure: the incremental hot-path report — the pr5
		// churn workload re-measured on the cached-gain engine, judged by
		// single-shard speedup over the recorded pr5 baseline.
		fmt.Printf("PR 6 report: incremental hot path vs pr5 baseline on the churn workload\n\n")
		var data []byte
		data, err = os.ReadFile(*baselinePath)
		var report *experiments.PR6Report
		if err == nil {
			var baseline experiments.PR6Baseline
			baseline, err = experiments.PR5BaselineFromJSON(data, *baselinePath)
			if err == nil {
				report, err = experiments.SweepPR6(opts, baseline, *minSpeedup)
			}
		}
		if err == nil {
			err = report.RenderPR6(os.Stdout)
		}
		if err == nil && *jsonPath != "" {
			var f *os.File
			if f, err = os.Create(*jsonPath); err == nil {
				err = report.WritePR6JSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
		if err == nil && *gate && !report.MeetsTarget {
			fmt.Fprintf(os.Stderr, "hta-bench: pr6 gate: speedup %.2fx below required %.2fx\n",
				report.SpeedupAt1, report.TargetSpeedup)
			os.Exit(1)
		}
	case "pr8":
		// Not a paper figure: the quality-layer report — one simulated
		// crowd answering at k = 1/3/5, three aggregators scored against
		// ground truth, judged by the trust-aware methods beating plain
		// majority at k=3.
		fmt.Printf("PR 8 report: answer accuracy vs redundancy k under a mixed honest/spammy crowd\n\n")
		var report *experiments.PR8Report
		report, err = experiments.SweepPR8(opts)
		if err == nil {
			err = report.RenderPR8(os.Stdout)
		}
		if err == nil && *jsonPath != "" {
			var f *os.File
			if f, err = os.Create(*jsonPath); err == nil {
				err = report.WritePR8JSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
		if err == nil && *gate && !report.MeetsTarget {
			fmt.Fprintf(os.Stderr, "hta-bench: pr8 gate: weighted beats majority at k=3: %v, EM beats majority at k=3: %v\n",
				report.WeightedBeatsMajorityAtK3, report.EMBeatsMajorityAtK3)
			os.Exit(1)
		}
	case "pr7":
		// Not a paper figure: the multi-node cluster report — the pr5
		// churn workload routed through the gateway's batched RPC plane at
		// 1/2/4 nodes, judged by 4-node aggregate speedup and by the
		// batched-vs-per-op contrast.
		fmt.Printf("PR 7 report: cluster gateway throughput over loopback HTTP (total buffer fixed across node counts)\n\n")
		var report *experiments.PR7Report
		report, err = experiments.SweepPR7(opts)
		if err == nil {
			err = report.RenderPR7(os.Stdout)
		}
		if err == nil && *jsonPath != "" {
			var f *os.File
			if f, err = os.Create(*jsonPath); err == nil {
				err = report.WritePR7JSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
		if err == nil && *gate && !report.MeetsTarget {
			fmt.Fprintf(os.Stderr, "hta-bench: pr7 gate: 4-node speedup %.2fx (target %.2fx), batched beats per-op: %v\n",
				report.SpeedupAt4, report.TargetSpeedup, report.BatchedBeatsUnbatched)
			os.Exit(1)
		}
	case "pr9":
		// Not a paper figure: the cluster observability overhead report —
		// the pr7 gateway workload at 3 nodes with federated metrics, 1/16
		// head sampling (remote spans on every node) and ops journals live,
		// against the same cluster with all of it off, judged by the 2%
		// budget.
		fmt.Printf("PR 9 report: cluster observability overhead on the pr7 gateway workload (3 nodes)\n\n")
		var report *experiments.PR9Report
		report, err = experiments.SweepPR9(opts)
		if err == nil {
			err = report.RenderPR9(os.Stdout)
		}
		if err == nil && *jsonPath != "" {
			var f *os.File
			if f, err = os.Create(*jsonPath); err == nil {
				err = report.WritePR9JSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
		if err == nil && *gate && !report.WithinBudget {
			fmt.Fprintf(os.Stderr, "hta-bench: pr9 gate: observability overhead %.2f%% exceeds the %.0f%% budget\n",
				report.MaxOverheadPct, report.BudgetPct)
			os.Exit(1)
		}
	case "pr10":
		// Not a paper figure: the predictive-scheduling report — the
		// bursty-churn deadline workload replayed under reactive
		// (watermark-only) and predictive (forecast-driven) rebalancing on
		// identical seeds, judged by deadline-miss rate.
		fmt.Printf("PR 10 report: deadline-miss rate, predictive vs reactive rebalancing under bursty churn\n\n")
		var report *experiments.PR10Report
		report, err = experiments.SweepPR10(opts)
		if err == nil {
			err = report.RenderPR10(os.Stdout)
		}
		if err == nil && *jsonPath != "" {
			var f *os.File
			if f, err = os.Create(*jsonPath); err == nil {
				err = report.WritePR10JSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
		if err == nil && *gate && !report.PredictiveBeatsReactive {
			fmt.Fprintf(os.Stderr, "hta-bench: pr10 gate: predictive miss %.2f%% does not beat reactive %.2f%%\n",
				report.PredictiveMissPct, report.ReactiveMissPct)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "hta-bench: unknown figure %q (want 2a, 2b, 2c, 3, obj, bg, pr2, pr3, pr4, pr5, pr6, pr7, pr8, pr9 or pr10)\n", *fig)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hta-bench:", err)
		os.Exit(1)
	}
	if !asCSV {
		fmt.Printf("\ncompleted in %s (scale %.2f, %d run(s) per point)\n",
			experiments.Elapsed(start), *scale, *runs)
	}
}

func render(sweep func(experiments.Options) ([]experiments.Row, error), opts experiments.Options, kind string, asCSV bool, title string) error {
	rows, err := sweep(opts)
	if err != nil {
		return err
	}
	if asCSV {
		return experiments.WriteRowsCSV(os.Stdout, rows)
	}
	fmt.Printf(title+"\n\n", opts.Xmax)
	return experiments.RenderRows(os.Stdout, rows, kind)
}
