// Command hta-crowd runs a simulated crowd against the HTTP assignment
// platform — the live deployment of Section V-C driven entirely over the
// wire. By default it is self-contained: it starts an in-process
// hta-server deployment (22 kinds of tasks, graded questions) and lets N
// simulated workers run concurrent sessions against it; with -server it
// drives an external platform instead (without graded answers, since the
// ground truth lives with the server that generated it).
//
// Usage:
//
//	hta-crowd [-workers 8] [-minutes 15] [-seed 1]
//	hta-crowd -server http://localhost:8080 -universe 100
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"text/tabwriter"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/bot"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/crowd"
	"github.com/htacs/ata/internal/platform"
	"github.com/htacs/ata/internal/question"
	"github.com/htacs/ata/internal/workload"
)

func main() {
	workers := flag.Int("workers", 8, "number of simulated workers")
	minutes := flag.Float64("minutes", 15, "simulated session length in minutes")
	seed := flag.Int64("seed", 1, "random seed")
	serverURL := flag.String("server", "", "drive this external platform instead of a self-contained one")
	universe := flag.Int("universe", 100, "keyword universe size (must match the server)")
	flag.Parse()

	var client *platform.Client
	var oracle bot.Oracle
	if *serverURL == "" {
		url, bank, err := startDeployment(*seed, *universe)
		if err != nil {
			log.Fatalf("hta-crowd: %v", err)
		}
		fmt.Printf("self-contained platform at %s\n", url)
		client = platform.NewClient(url, nil)
		oracle = func(taskID, questionID string) (int, bool) {
			for _, q := range bank.ForTask(taskID) {
				if q.ID == questionID {
					return q.Answer, true
				}
			}
			return 0, false
		}
	} else {
		client = platform.NewClient(*serverURL, nil)
		fmt.Printf("driving external platform at %s (no graded answers)\n", *serverURL)
	}

	params := crowd.DefaultParams()
	params.SessionMinutes = *minutes

	rng := rand.New(rand.NewSource(*seed))
	var wg sync.WaitGroup
	results := make([]*bot.Result, *workers)
	errs := make([]error, *workers)
	for i := 0; i < *workers; i++ {
		worker := newSimWorker(fmt.Sprintf("bot-%02d", i), rng, *universe)
		botSeed := rng.Int63()
		wg.Add(1)
		go func(i int, w *crowd.SimWorker, s int64) {
			defer wg.Done()
			results[i], errs[i] = bot.Run(bot.Config{
				Client:   client,
				Worker:   w,
				Universe: *universe,
				Params:   params,
				Oracle:   oracle,
				Rand:     rand.New(rand.NewSource(s)),
			})
		}(i, worker, botSeed)
	}
	wg.Wait()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "worker\tcompleted\tgraded\tcorrect\tminutes\tdropped\tα\tβ")
	var totC, totG, totOK int
	for i, res := range results {
		if errs[i] != nil {
			fmt.Fprintf(tw, "bot-%02d\tERROR: %v\n", i, errs[i])
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f\t%v\t%.2f\t%.2f\n",
			res.WorkerID, res.Completed, res.Graded, res.Correct,
			res.DurationMinutes, res.DroppedOut, res.FinalAlpha, res.FinalBeta)
		totC += res.Completed
		totG += res.Graded
		totOK += res.Correct
	}
	tw.Flush()
	fmt.Printf("\ncrowd total: %d tasks", totC)
	if totG > 0 {
		fmt.Printf(", quality %.1f%% (%d/%d graded answers)", 100*float64(totOK)/float64(totG), totOK, totG)
	}
	fmt.Println()

	if stats, err := client.Stats(); err == nil {
		fmt.Printf("platform: %d iterations, %d tasks left in pool", stats.Iteration, stats.PoolSize)
		if stats.Graded > 0 {
			fmt.Printf(", server-side quality %.1f%%", stats.QualityPercent)
		}
		fmt.Println()
	}
}

// startDeployment boots an in-process platform with a graded corpus.
func startDeployment(seed int64, universe int) (string, *question.Bank, error) {
	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax:             15,
		ExtraRandomTasks: 5,
		Rand:             rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return "", nil, err
	}
	gen, err := workload.NewGenerator(workload.Config{Seed: seed, Universe: universe})
	if err != nil {
		return "", nil, err
	}
	tasks := gen.Tasks(22, 40)
	bank, err := question.Generate(tasks, 1.65, seed)
	if err != nil {
		return "", nil, err
	}
	if err := engine.AddTasks(tasks...); err != nil {
		return "", nil, err
	}
	srv, err := platform.NewServer(platform.ServerConfig{
		Engine: engine, Universe: universe, Questions: bank,
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go func() {
		if err := http.Serve(ln, srv); err != nil {
			log.Print(err)
		}
	}()
	return "http://" + ln.Addr().String(), bank, nil
}

// newSimWorker draws a worker whose interests align with a task kind, as
// the live platform's keyword-choice UI induces.
func newSimWorker(id string, rng *rand.Rand, universe int) *crowd.SimWorker {
	kw := bitset.New(universe)
	for kw.Count() < 6 {
		kw.Add(rng.Intn(universe))
	}
	return &crowd.SimWorker{
		Worker:    &core.Worker{ID: id, Keywords: kw},
		TrueAlpha: 0.25 + 0.5*rng.Float64(),
		Skill:     0.92 + 0.16*rng.Float64(),
		Speed:     0.85 + 0.3*rng.Float64(),
	}
}
