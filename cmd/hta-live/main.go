// Command hta-live regenerates the paper's online deployment experiment
// (Section V-C, Figures 5a–5c): 30-minute simulated work sessions under
// the strategies HTA-GRE (adaptive), HTA-GRE-REL (relevance only) and
// HTA-GRE-DIV (diversity only), reporting crowdwork quality, task
// throughput and worker retention over time plus the significance tests
// the paper runs.
//
// Usage:
//
//	hta-live [-sessions 20] [-seed 1] [-minutes 30]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/htacs/ata/internal/crowd"
	"github.com/htacs/ata/internal/experiments"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/plot"
	"github.com/htacs/ata/internal/trace"
)

// renderCharts draws the three Figure 5 panels as ASCII line charts.
func renderCharts(res *experiments.Fig5Result) error {
	charts := []struct {
		title  string
		series func(crowd.Strategy) []float64
		cfg    plot.Config
	}{
		{"\nFigure 5a — cumulative % correct answers", func(s crowd.Strategy) []float64 {
			return res.Study.QualityCurve(s, res.Grid)
		}, plot.Config{}},
		{"\nFigure 5b — cumulative completed tasks", func(s crowd.Strategy) []float64 {
			curve := res.Study.ThroughputCurve(s, res.Grid)
			out := make([]float64, len(curve))
			for i, v := range curve {
				out[i] = float64(v)
			}
			return out
		}, plot.Config{}},
		{"\nFigure 5c — % of sessions still running", func(s crowd.Strategy) []float64 {
			ret := res.Study.RetentionCurve(s, res.Grid)
			out := make([]float64, len(ret))
			for i, p := range ret {
				out[i] = 100 * p.Fraction
			}
			return out
		}, plot.Config{YMin: 0, YMax: 105}},
	}
	for _, c := range charts {
		series := make([]plot.Series, len(crowd.Strategies))
		for i, s := range crowd.Strategies {
			series[i] = plot.Series{Name: string(s), Y: c.series(s)}
		}
		if err := plot.Lines(os.Stdout, c.title, res.Grid, series, c.cfg); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	sessions := flag.Int("sessions", 20, "work sessions per strategy (paper: 20)")
	seed := flag.Int64("seed", 1, "random seed")
	minutes := flag.Float64("minutes", 30, "session time limit in minutes (paper: 30)")
	csvOut := flag.String("csv", "", "also write the per-minute curves as CSV to this file")
	filtered := flag.Bool("filtered", false,
		"run the paper's full selection pipeline: worker qualification, overtime and incomplete-session filters, top-N by completions")
	chart := flag.Bool("chart", false, "render the Figure 5a-5c curves as ASCII charts")
	sessionsOut := flag.String("out", "", "archive raw sessions as JSON lines to this file (analyze with hta-report)")
	parallel := flag.Int("parallel", 0,
		"diversity-kernel parallelism per session engine: 0 = serial, N > 0 = N goroutines, -1 = all cores; sessions are bit-identical")
	metricsAddr := flag.String("metrics", "",
		"serve the obs registry on this address (/metrics, /healthz, /debug/pprof) while the study runs; empty disables")
	flag.Parse()

	// The side listener shuts down — and releases the port — when main's
	// context is cancelled, instead of leaking a goroutine until exit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *metricsAddr != "" {
		mux := obs.Default().SideMux()
		trace.RegisterDebug(mux, trace.Default())
		go func() {
			if err := obs.Default().ServeUntil(ctx, *metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "hta-live: metrics:", err)
			}
		}()
	}

	params := crowd.DefaultParams()
	params.SessionMinutes = *minutes
	params.Parallelism = *parallel
	start := time.Now()
	res, err := experiments.Fig5(experiments.Fig5Options{
		SessionsPerStrategy: *sessions,
		Seed:                *seed,
		Params:              &params,
		Filtered:            *filtered,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hta-live:", err)
		os.Exit(1)
	}
	fmt.Printf("Figures 5a-5c: online study, %d sessions per strategy, %.0f-minute sessions\n\n",
		*sessions, *minutes)
	if err := res.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hta-live:", err)
		os.Exit(1)
	}
	if *chart {
		if err := renderCharts(res); err != nil {
			fmt.Fprintln(os.Stderr, "hta-live:", err)
			os.Exit(1)
		}
	}
	if *sessionsOut != "" {
		f, err := os.Create(*sessionsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hta-live:", err)
			os.Exit(1)
		}
		if err := res.Study.WriteSessions(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "hta-live:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hta-live:", err)
			os.Exit(1)
		}
		fmt.Printf("\narchived sessions to %s\n", *sessionsOut)
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hta-live:", err)
			os.Exit(1)
		}
		if err := res.WriteFig5CSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "hta-live:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hta-live:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote per-minute curves to %s\n", *csvOut)
	}
	fmt.Printf("\ncompleted in %s\n", experiments.Elapsed(start))
}
