package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/platform"
)

const testUniverse = 40

// newTestServer builds the same engine+platform wiring main assembles,
// with reassignment after every completion so the solver path (and its
// telemetry) is exercised immediately.
func newTestServer(t *testing.T, maxBody int64) (*platform.Server, *adaptive.Engine) {
	t.Helper()
	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax:             3,
		ExtraRandomTasks: 0,
		Rand:             rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := platform.NewServer(platform.ServerConfig{
		Engine:            engine,
		Universe:          testUniverse,
		ReassignPerWorker: 1,
		ReassignTotal:     1,
		MaxBodyBytes:      maxBody,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, engine
}

func genTasks(n int) []*core.Task {
	tasks := make([]*core.Task, n)
	for i := range tasks {
		tasks[i] = &core.Task{
			ID:       fmt.Sprintf("t%d", i),
			Reward:   0.05,
			Keywords: bitset.FromIndices(testUniverse, i%testUniverse, (i*7+3)%testUniverse, (i*11+5)%testUniverse),
		}
	}
	return tasks
}

// TestAssignmentRoundTrip drives the full worker loop over a real HTTP
// socket through the hardened listener: upload tasks, register, fetch,
// complete, stats.
func TestAssignmentRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, 0)
	httpSrv := newHTTPServer("", srv, serverParams{
		readTimeout: 5 * time.Second, writeTimeout: 5 * time.Second, idleTimeout: time.Minute,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	client := platform.NewClient("http://"+ln.Addr().String(), nil)
	if err := client.AddTasks(genTasks(30)); err != nil {
		t.Fatal(err)
	}
	set, err := client.Register("w1", []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) == 0 {
		t.Fatal("registration returned no tasks")
	}
	resp, err := client.Complete("w1", set[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Reassigned {
		t.Fatal("ReassignPerWorker=1 must trigger reassignment on first completion")
	}
	if len(resp.Tasks) == 0 {
		t.Fatal("reassignment returned no tasks")
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iteration < 2 || len(stats.Workers) != 1 || stats.Workers[0].Completed != 1 {
		t.Fatalf("stats = %+v, want iteration >= 2 and one worker with one completion", stats)
	}
}

// TestMetricsEndpoint checks that after a solver-backed iteration the
// /metrics exposition carries the pipeline telemetry the ROADMAP
// acceptance names: solver phase histograms, stream queue depth, and
// per-endpoint request latency — and that both exposition formats parse.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := platform.NewClient(ts.URL, nil)
	if err := client.AddTasks(genTasks(30)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Register("w1", []int{0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	set, err := client.Tasks("w1")
	if err != nil {
		t.Fatal(err)
	}
	// Completing forces a warm iteration → the HTA solver runs → phase
	// histograms fill.
	if _, err := client.Complete("w1", set[0].ID); err != nil {
		t.Fatal(err)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	values := parsePrometheus(t, res.Body)
	// Solver ran at least once: the total-phase histogram has counts.
	if v := values[`hta_solver_phase_seconds_count{phase="total"}`]; v < 1 {
		t.Fatalf("solver total-phase count = %v, want >= 1\nseries: %v", v, keysWithPrefix(values, "hta_solver"))
	}
	for _, phase := range []string{"matching", "lsap", "flip"} {
		key := fmt.Sprintf("hta_solver_phase_seconds_count{phase=%q}", phase)
		if _, ok := values[key]; !ok {
			t.Fatalf("missing solver phase series %s", key)
		}
	}
	// Stream family is pre-registered (zero until a streaming deployment
	// exercises it) so the scrape surface is stable.
	if _, ok := values["hta_stream_queue_depth"]; !ok {
		t.Fatal("missing hta_stream_queue_depth")
	}
	// Per-endpoint serving telemetry. The default registry is process-wide
	// (other tests in this binary also drive servers), so the assertions
	// are lower bounds.
	if v := values[`hta_http_request_seconds_count{endpoint="POST /api/workers"}`]; v < 1 {
		t.Fatalf("register endpoint latency count = %v, want >= 1", v)
	}
	if v := values[`hta_http_requests_total{code="200",endpoint="POST /api/workers/{id}/complete"}`]; v < 1 {
		t.Fatalf("complete endpoint request counter = %v, want >= 1", v)
	}
	// Engine telemetry follows the iterations driven above.
	if v := values["hta_adaptive_iterations_total"]; v < 2 {
		t.Fatalf("adaptive iterations = %v, want >= 2", v)
	}

	// JSON twin must parse and carry the same families.
	res2, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var doc struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(res2.Body).Decode(&doc); err != nil {
		t.Fatalf("JSON exposition does not parse: %v", err)
	}
	names := make(map[string]bool)
	for _, m := range doc.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{"hta_solver_phase_seconds", "hta_stream_queue_depth", "hta_http_request_seconds"} {
		if !names[want] {
			t.Fatalf("JSON exposition missing family %s", want)
		}
	}
}

// parsePrometheus reads text exposition lines into series → value.
func parsePrometheus(t *testing.T, r interface{ Read([]byte) (int, error) }) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func keysWithPrefix(m map[string]float64, prefix string) []string {
	var out []string
	for k := range m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}

// TestHealthzAndDraining: healthy server answers 200, a draining one 503.
func TestHealthzAndDraining(t *testing.T) {
	srv, _ := newTestServer(t, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("healthy /healthz status %d", res.StatusCode)
	}
	srv.SetDraining(true)
	res, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz status %d, want 503", res.StatusCode)
	}
}

// TestBodyLimit: a request body over MaxBodyBytes must be rejected, not
// buffered.
func TestBodyLimit(t *testing.T) {
	srv, _ := newTestServer(t, 256)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	big := `{"tasks":[` + strings.Repeat(`{"id":"x","keywords":[1]},`, 100)
	big = strings.TrimSuffix(big, ",") + "]}"
	res, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body status %d, want 400", res.StatusCode)
	}
}

// TestReadTimeout: a client that stalls mid-request is cut off by the
// listener's read deadline instead of pinning a connection forever.
func TestReadTimeout(t *testing.T) {
	srv, _ := newTestServer(t, 0)
	httpSrv := newHTTPServer("", srv, serverParams{
		readTimeout: 150 * time.Millisecond, writeTimeout: time.Second, idleTimeout: time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send an incomplete request and stall past the read deadline.
	if _, err := conn.Write([]byte("POST /api/tasks HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n{")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1024)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // connection closed (possibly after a 408) — deadline enforced
		}
	}
}

// TestGracefulShutdown: shutdown drains in-flight requests to completion,
// flips /healthz to draining, and refuses new connections afterwards.
func TestGracefulShutdown(t *testing.T) {
	srv, _ := newTestServer(t, 0)
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(w, "done")
	})
	httpSrv := newHTTPServer("", mux, serverParams{
		readTimeout: 5 * time.Second, writeTimeout: 5 * time.Second, idleTimeout: time.Minute,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	var wg sync.WaitGroup
	wg.Add(1)
	var slowBody string
	var slowErr error
	go func() {
		defer wg.Done()
		res, err := http.Get(base + "/slow")
		if err != nil {
			slowErr = err
			return
		}
		defer res.Body.Close()
		b := make([]byte, 16)
		n, _ := res.Body.Read(b)
		slowBody = string(b[:n])
	}()

	<-started
	if err := shutdownGracefully(httpSrv, srv, 5*time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	wg.Wait()
	if slowErr != nil {
		t.Fatalf("in-flight request was cut off: %v", slowErr)
	}
	if slowBody != "done" {
		t.Fatalf("in-flight response = %q, want %q", slowBody, "done")
	}
	if srv.Ready() {
		t.Fatal("server must report draining after shutdown")
	}
	// The drained server answers 503 on /healthz (checked handler-level —
	// the listener no longer accepts).
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown /healthz = %d, want 503", rec.Code)
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}
}

// TestSnapshotRoundTrip covers main's snapshot save/restore path: a
// drained server's state written by saveSnapshot must restore through
// buildEngine.
func TestSnapshotRoundTrip(t *testing.T) {
	srv, engine := newTestServer(t, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := platform.NewClient(ts.URL, nil)
	if err := client.AddTasks(genTasks(30)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Register("w1", []int{0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.json")
	if err := saveSnapshot(srv, path); err != nil {
		t.Fatal(err)
	}
	restored, wasRestored, err := buildEngine(adaptive.Config{
		Xmax: 3, Rand: rand.New(rand.NewSource(7)),
	}, path)
	if err != nil {
		t.Fatal(err)
	}
	if !wasRestored {
		t.Fatal("existing snapshot must restore")
	}
	if restored.Iteration() != engine.Iteration() || restored.PoolSize() != engine.PoolSize() {
		t.Fatalf("restored (iter %d, pool %d) != live (iter %d, pool %d)",
			restored.Iteration(), restored.PoolSize(), engine.Iteration(), engine.PoolSize())
	}
	// Missing snapshot path starts fresh.
	fresh, wasRestored, err := buildEngine(adaptive.Config{
		Xmax: 3, Rand: rand.New(rand.NewSource(7)),
	}, filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if wasRestored || fresh.Iteration() != 0 {
		t.Fatal("absent snapshot must start a fresh engine")
	}
}
