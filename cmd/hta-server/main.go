// Command hta-server runs the crowdsourcing assignment platform (the
// workflow of Figure 4) as an HTTP service. Tasks can be preloaded from a
// JSON-lines file produced by hta-gen, or uploaded at runtime via
// POST /api/tasks. With -snapshot the full engine state (task pool,
// in-flight assignments, learned α/β) is restored at startup and saved on
// SIGINT/SIGTERM, so the experiment survives restarts.
//
// Usage:
//
//	hta-server [-addr :8080] [-tasks tasks.jsonl] [-snapshot state.json]
//	           [-xmax 15] [-extra 5] [-universe 100]
//
// Endpoints:
//
//	POST   /api/tasks                 {"tasks": [{"id","group","reward","keywords"}]}
//	POST   /api/workers               {"id": "...", "keywords": [>=6 ints]}
//	GET    /api/workers/{id}/tasks
//	POST   /api/workers/{id}/complete {"task_id": "..."}
//	DELETE /api/workers/{id}
//	GET    /api/stats
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/platform"
	"github.com/htacs/ata/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	tasksPath := flag.String("tasks", "", "optional JSON-lines task file to preload (see hta-gen)")
	snapshotPath := flag.String("snapshot", "", "engine state file: restored at startup, written on SIGINT/SIGTERM")
	xmax := flag.Int("xmax", 15, "per-worker capacity Xmax (paper live setting: 15)")
	extra := flag.Int("extra", 5, "extra random tasks per display set (paper: 5)")
	universe := flag.Int("universe", 100, "keyword universe size")
	seed := flag.Int64("seed", time.Now().UnixNano(), "random seed for the solver and extras")
	perWorker := flag.Int("reassign-per-worker", 10, "completions per worker that trigger a new iteration")
	total := flag.Int("reassign-total", 25, "total completions that trigger a new iteration")
	flag.Parse()

	cfg := adaptive.Config{
		Xmax:             *xmax,
		ExtraRandomTasks: *extra,
		Rand:             rand.New(rand.NewSource(*seed)),
	}
	engine, restored, err := buildEngine(cfg, *snapshotPath)
	if err != nil {
		log.Fatalf("hta-server: %v", err)
	}
	if restored {
		fmt.Printf("restored engine state from %s (iteration %d, %d pooled tasks)\n",
			*snapshotPath, engine.Iteration(), engine.PoolSize())
	}
	if *tasksPath != "" {
		f, err := os.Open(*tasksPath)
		if err != nil {
			log.Fatalf("hta-server: %v", err)
		}
		tasks, err := workload.ReadTasks(f)
		f.Close()
		if err != nil {
			log.Fatalf("hta-server: reading %s: %v", *tasksPath, err)
		}
		if err := engine.AddTasks(tasks...); err != nil {
			log.Fatalf("hta-server: loading tasks: %v", err)
		}
		fmt.Printf("loaded %d tasks from %s\n", len(tasks), *tasksPath)
	}
	srv, err := platform.NewServer(platform.ServerConfig{
		Engine:            engine,
		Universe:          *universe,
		ReassignPerWorker: *perWorker,
		ReassignTotal:     *total,
	})
	if err != nil {
		log.Fatalf("hta-server: %v", err)
	}

	if *snapshotPath != "" {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sigs
			if err := saveSnapshot(srv, *snapshotPath); err != nil {
				log.Printf("hta-server: snapshot: %v", err)
				os.Exit(1)
			}
			fmt.Printf("\nsaved engine state to %s\n", *snapshotPath)
			os.Exit(0)
		}()
	}

	fmt.Printf("assignment service listening on %s (Xmax=%d, +%d random)\n", *addr, *xmax, *extra)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// buildEngine restores from the snapshot when it exists, otherwise starts
// fresh.
func buildEngine(cfg adaptive.Config, snapshotPath string) (*adaptive.Engine, bool, error) {
	if snapshotPath == "" {
		e, err := adaptive.NewEngine(cfg)
		return e, false, err
	}
	f, err := os.Open(snapshotPath)
	if errors.Is(err, fs.ErrNotExist) {
		e, err := adaptive.NewEngine(cfg)
		return e, false, err
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	e, err := adaptive.Restore(f, cfg)
	if err != nil {
		return nil, false, fmt.Errorf("restoring %s: %w", snapshotPath, err)
	}
	return e, true, nil
}

// saveSnapshot writes atomically via a temp file, snapshotting through the
// server so the engine is quiesced.
func saveSnapshot(srv *platform.Server, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
