// Command hta-server runs the crowdsourcing assignment platform (the
// workflow of Figure 4) as an HTTP service. Tasks can be preloaded from a
// JSON-lines file produced by hta-gen, or uploaded at runtime via
// POST /api/tasks. With -snapshot the full engine state (task pool,
// in-flight assignments, learned α/β) is restored at startup and saved on
// SIGINT/SIGTERM, so the experiment survives restarts.
//
// Cluster mode stacks a thin RPC plane on the sharded engine. A process
// started with -node NAME (implies -shards >= 1) additionally serves the
// cluster protocol under /cluster/ — batched op frames, health probes,
// and per-node snapshot cuts. A process started with -gateway -peers
// name=url,... runs no local engine: it routes every streaming op across
// the named nodes by consistent hashing, scatter-gathers marginal-gain
// scores for task placement, and re-partitions the ring when heartbeats
// declare a node dead. The public HTTP surface is identical in all three
// modes; only the backend behind it changes.
//
// The server is hardened for unattended operation: read/write/idle
// timeouts on every connection, bounded request bodies, and a graceful
// shutdown path — on SIGINT/SIGTERM the /healthz endpoint flips to 503
// (so load balancers drain), in-flight requests finish within
// -shutdown-grace, and only then is the snapshot written.
//
// With -shards N (N >= 1) the service runs the sharded streaming engine
// instead of batch iterations: workers are partitioned across N shard
// actors by consistent hashing, uploaded tasks are routed to the worker
// with the best marginal motivation gain across all shards (or buffered),
// and completions immediately pull buffered work. The HTTP surface is
// unchanged; /api/stats reports the engine-wide conservation accounting.
// Snapshots in this mode are the consistent merge of per-shard snapshots
// and can be restored at a different -shards count.
//
// Usage:
//
//	hta-server [-addr :8080] [-tasks tasks.jsonl] [-snapshot state.json]
//	           [-shards 0] [-buffer 1024]
//	           [-deadline-aware] [-urgency-horizon 30s] [-expire-interval 1s]
//	           [-predictive] [-forecast-horizon 3] [-learn-windows]
//	           [-health-window 5m]
//	           [-node name] [-gateway] [-peers n1=http://h1,n2=http://h2]
//	           [-redundancy 0] [-gold-rate 0.2] [-gold gold.jsonl]
//	           [-agg weighted] [-quarantine-floor 0.4]
//	           [-xmax 15] [-extra 5] [-universe 100]
//	           [-read-timeout 10s] [-write-timeout 30s] [-shutdown-grace 15s]
//	           [-max-body 8388608]
//	           [-log-level info] [-log-format text]
//	           [-trace-sample 1] [-trace-capacity 256]
//
// Every request opens a root trace span (1 in -trace-sample requests;
// 0 disables tracing) that propagates through the adaptive engine into
// the solver phases; sampled responses carry an X-Trace-Id header, and
// the retained traces are served at GET /debug/trace — as Chrome
// trace-event JSON by default (load the file in Perfetto), or as a text
// tree with ?format=tree. Logs are structured (log/slog) and
// trace-correlated: lines emitted while serving a sampled request carry
// its trace_id/span_id.
//
// With -redundancy k (streaming modes only) the quality layer is active:
// every uploaded task is replicated into k engine tasks so it collects k
// answers before it is resolved; a -gold-rate fraction of tasks (plus any
// explicit -gold answer-key file from hta-gen) are graded against known
// answers, driving per-worker accuracy estimates that multiply into the
// assignment objective and quarantine workers below -quarantine-floor.
// Answers are submitted via POST /api/answers and aggregated by -agg
// (majority, weighted or em). With -snapshot the tracker's state is
// persisted beside the engine snapshot (at <path>.quality) and restored
// with it, so reputation survives restarts.
//
// Endpoints:
//
//	POST   /api/tasks                 {"tasks": [{"id","group","reward","keywords"}]}
//	POST   /api/workers               {"id": "...", "keywords": [>=6 ints]}
//	GET    /api/workers/{id}/tasks
//	POST   /api/workers/{id}/complete {"task_id": "..."}
//	DELETE /api/workers/{id}
//	POST   /api/answers               {"worker","task_id","option"} (with -redundancy)
//	GET    /api/answers               aggregated consensus + conservation stats
//	GET    /api/workers/{id}/reputation
//	GET    /api/stats
//	GET    /api/events                ops event journal (gateway: merged across nodes; ?local=1)
//	GET    /metrics                   Prometheus text (gateway: federated with per-node labels; ?local=1)
//	GET    /healthz                   200 ok / 503 draining (?verbose=1 for the journal health score)
//	GET    /debug/trace?n=K           last K retained traces (&format=tree for text; gateway: &cluster=1 stitches all nodes)
//	GET    /debug/pprof/              net/http/pprof profiling suite
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/cluster"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/platform"
	"github.com/htacs/ata/internal/quality"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/trace"
	"github.com/htacs/ata/internal/workload"
)

// serverParams are the hardening knobs of the HTTP listener.
type serverParams struct {
	readTimeout   time.Duration
	writeTimeout  time.Duration
	idleTimeout   time.Duration
	shutdownGrace time.Duration
}

// newHTTPServer wires the hardened listener: header/body read deadlines,
// write deadlines, idle connection reaping. Extracted from main so the
// integration tests exercise the same configuration curl hits.
func newHTTPServer(addr string, h http.Handler, p serverParams) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: p.readTimeout,
		ReadTimeout:       p.readTimeout,
		WriteTimeout:      p.writeTimeout,
		IdleTimeout:       p.idleTimeout,
	}
}

// shutdownGracefully drains the server: flip /healthz to 503, stop
// accepting connections, wait up to grace for in-flight assignments to
// finish. Returns the Shutdown error (context.DeadlineExceeded when the
// grace period expired with requests still running).
func shutdownGracefully(httpSrv *http.Server, srv *platform.Server, grace time.Duration) error {
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return httpSrv.Shutdown(ctx)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	tasksPath := flag.String("tasks", "", "optional JSON-lines task file to preload (see hta-gen)")
	snapshotPath := flag.String("snapshot", "", "engine state file: restored at startup, written on SIGINT/SIGTERM")
	shards := flag.Int("shards", 0, "run the sharded streaming engine with N shards instead of batch iterations (0 = batch)")
	buffer := flag.Int("buffer", 1024, "per-shard task buffer limit (sharded mode only)")
	redundancy := flag.Int("redundancy", 0, "collect this many answers per task before resolving it (0 disables the quality layer; streaming modes only)")
	goldRate := flag.Float64("gold-rate", 0.2, "fraction of tasks auto-marked gold for online grading (with -redundancy)")
	goldFile := flag.String("gold", "", "optional gold answer-key file from hta-gen -gold-out (with -redundancy)")
	aggMethod := flag.String("agg", "weighted", "answer aggregation method: majority, weighted or em (with -redundancy)")
	quarantineFloor := flag.Float64("quarantine-floor", 0.4, "quarantine workers whose gold accuracy drops below this (with -redundancy; 0 disables)")
	deadlineAware := flag.Bool("deadline-aware", false, "order buffered work by deadline urgency and route deadlined tasks away from departing workers (sharded mode only)")
	urgencyHorizon := flag.Duration("urgency-horizon", 30*time.Second, "a deadline within this horizon makes a task urgent (with -deadline-aware)")
	expireInterval := flag.Duration("expire-interval", time.Second, "period of the deadline-expiry sweep over shard buffers (with -deadline-aware; 0 disables)")
	predictive := flag.Bool("predictive", false, "rebalance shards on forecast demand (EWMA arrival/completion rates) instead of current backlog only (sharded mode only)")
	forecastHorizon := flag.Float64("forecast-horizon", 3, "steal rounds of lookahead in the backlog projection (with -predictive)")
	learnWindows := flag.Bool("learn-windows", false, "learn per-worker availability windows from observed session lengths (sharded mode only)")
	healthWindow := flag.Duration("health-window", ops.DefaultHealthWindow, "scoring window of GET /healthz?verbose=1 over the ops journal")
	nodeName := flag.String("node", "", "cluster member name: also serve the cluster RPC plane under /cluster/ (requires -shards >= 1)")
	gatewayMode := flag.Bool("gateway", false, "run as the cluster gateway: no local engine, ops routed across -peers")
	peersSpec := flag.String("peers", "", "cluster membership as name=url,name=url (gateway mode only)")
	xmax := flag.Int("xmax", 15, "per-worker capacity Xmax (paper live setting: 15)")
	extra := flag.Int("extra", 5, "extra random tasks per display set (paper: 5)")
	universe := flag.Int("universe", 100, "keyword universe size")
	seed := flag.Int64("seed", time.Now().UnixNano(), "random seed for the solver and extras")
	perWorker := flag.Int("reassign-per-worker", 10, "completions per worker that trigger a new iteration")
	total := flag.Int("reassign-total", 25, "total completions that trigger a new iteration")
	readTimeout := flag.Duration("read-timeout", 10*time.Second, "per-connection read deadline")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "per-connection write deadline")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle deadline")
	grace := flag.Duration("shutdown-grace", 15*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
	maxBody := flag.Int64("max-body", 8<<20, "request body limit in bytes (<0 disables)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	traceSample := flag.Int("trace-sample", 1, "trace 1 in N requests (0 disables tracing)")
	traceCap := flag.Int("trace-capacity", 256, "traces retained for GET /debug/trace")
	flag.Parse()

	logger, err := trace.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		log.Fatalf("hta-server: %v", err)
	}
	tracer := trace.NewRecorder(*traceCap, *traceSample)

	srvCfg := platform.ServerConfig{
		Universe:          *universe,
		ReassignPerWorker: *perWorker,
		ReassignTotal:     *total,
		MaxBodyBytes:      *maxBody,
		Tracer:            tracer,
		Logger:            logger,
		Health:            ops.HealthConfig{Window: *healthWindow},
	}
	var preload []*core.Task
	if *tasksPath != "" {
		f, err := os.Open(*tasksPath)
		if err != nil {
			log.Fatalf("hta-server: %v", err)
		}
		preload, err = workload.ReadTasks(f)
		f.Close()
		if err != nil {
			log.Fatalf("hta-server: reading %s: %v", *tasksPath, err)
		}
	}
	var qtracker *quality.Tracker
	if *redundancy > 0 {
		if *shards <= 0 && !*gatewayMode {
			log.Fatal("hta-server: -redundancy requires a streaming backend (-shards >= 1 or -gateway)")
		}
		method, err := quality.ParseMethod(*aggMethod)
		if err != nil {
			log.Fatalf("hta-server: %v", err)
		}
		qcfg := quality.Config{
			K:               *redundancy,
			GoldRate:        *goldRate,
			GoldSalt:        uint64(*seed),
			Method:          method,
			QuarantineFloor: *quarantineFloor,
		}
		var restoredQ bool
		qtracker, restoredQ, err = buildTracker(qcfg, qualitySnapshotPath(*snapshotPath))
		if err != nil {
			log.Fatalf("hta-server: %v", err)
		}
		if restoredQ {
			st := qtracker.Stats()
			fmt.Printf("restored quality tracker state from %s (%d answers, %d resolved, %d workers)\n",
				qualitySnapshotPath(*snapshotPath), st.AnswersSubmitted, st.TasksResolved, st.Workers)
		}
		if *goldFile != "" {
			f, err := os.Open(*goldFile)
			if err != nil {
				log.Fatalf("hta-server: %v", err)
			}
			gold, err := workload.ReadGold(f)
			f.Close()
			if err != nil {
				log.Fatalf("hta-server: reading %s: %v", *goldFile, err)
			}
			for _, g := range gold {
				if err := qtracker.AddGold(g.TaskID, g.Answer); err != nil {
					log.Fatalf("hta-server: gold task %s: %v", g.TaskID, err)
				}
			}
			fmt.Printf("loaded %d gold answers from %s\n", len(gold), *goldFile)
		}
		srvCfg.Quality = qtracker
		srvCfg.Redundancy = *redundancy
	}
	var clusterNode *cluster.Node
	if *gatewayMode {
		if *shards > 0 || *nodeName != "" {
			log.Fatal("hta-server: -gateway excludes -shards and -node (the gateway runs no local engine)")
		}
		peers, err := parsePeers(*peersSpec)
		if err != nil {
			log.Fatalf("hta-server: %v", err)
		}
		ops.SetDefaultNode("gateway")
		gw, err := cluster.NewGateway(cluster.GatewayConfig{Peers: peers, Logger: logger, Tracer: tracer})
		if err != nil {
			log.Fatalf("hta-server: %v", err)
		}
		defer gw.Close()
		if len(preload) > 0 {
			streamPreload(gw, qtracker, *redundancy, preload, *tasksPath)
		}
		// In gateway mode -snapshot writes the merged cluster cut at
		// shutdown; startup restore happens per node, not here.
		srvCfg.Shards = gw
	} else if *shards > 0 {
		scfg := shard.Config{
			Shards: *shards,
			Stream: stream.Config{
				Xmax: *xmax, BufferLimit: *buffer, WithTrust: qtracker != nil,
				DeadlineAware:  *deadlineAware,
				UrgencyHorizon: urgencyHorizon.Nanoseconds(),
			},
			Predictive:      *predictive,
			ForecastHorizon: *forecastHorizon,
			LearnWindows:    *learnWindows,
			Tracer:          tracer,
		}
		if *deadlineAware {
			scfg.ExpireInterval = *expireInterval
		}
		eng, restored, err := buildShardEngine(scfg, *snapshotPath)
		if err != nil {
			log.Fatalf("hta-server: %v", err)
		}
		defer eng.Close()
		if restored {
			st := eng.Stats()
			fmt.Printf("restored sharded engine state from %s (%d shards, %d workers, %d buffered)\n",
				*snapshotPath, st.Shards, st.Workers, st.Buffered)
		}
		if len(preload) > 0 {
			streamPreload(eng, qtracker, *redundancy, preload, *tasksPath)
		}
		if *nodeName != "" {
			ops.SetDefaultNode(*nodeName)
			clusterNode, err = cluster.NewNode(cluster.NodeConfig{Name: *nodeName, Engine: eng, Tracer: tracer})
			if err != nil {
				log.Fatalf("hta-server: %v", err)
			}
		}
		srvCfg.Shards = eng
	} else if *nodeName != "" {
		log.Fatal("hta-server: -node requires -shards >= 1 (the cluster plane serves the streaming engine)")
	} else {
		cfg := adaptive.Config{
			Xmax:             *xmax,
			ExtraRandomTasks: *extra,
			Rand:             rand.New(rand.NewSource(*seed)),
			Logger:           logger,
		}
		engine, restored, err := buildEngine(cfg, *snapshotPath)
		if err != nil {
			log.Fatalf("hta-server: %v", err)
		}
		if restored {
			fmt.Printf("restored engine state from %s (iteration %d, %d pooled tasks)\n",
				*snapshotPath, engine.Iteration(), engine.PoolSize())
		}
		if len(preload) > 0 {
			if err := engine.AddTasks(preload...); err != nil {
				log.Fatalf("hta-server: loading tasks: %v", err)
			}
			fmt.Printf("loaded %d tasks from %s\n", len(preload), *tasksPath)
		}
		srvCfg.Engine = engine
	}
	srv, err := platform.NewServer(srvCfg)
	if err != nil {
		log.Fatalf("hta-server: %v", err)
	}

	// -node mode mounts the cluster RPC plane beside the public API: one
	// listener serves both the worker-facing endpoints and the gateway's
	// batched frames.
	var handler http.Handler = srv
	if clusterNode != nil {
		outer := http.NewServeMux()
		outer.Handle("/cluster/", clusterNode)
		outer.Handle("/", srv)
		handler = outer
	}
	httpSrv := newHTTPServer(*addr, handler, serverParams{
		readTimeout:   *readTimeout,
		writeTimeout:  *writeTimeout,
		idleTimeout:   *idleTimeout,
		shutdownGrace: *grace,
	})

	// Explicit listen before serve so -addr :0 reports the kernel-chosen
	// port — the cluster smoke tests spawn nodes on ephemeral ports and
	// scrape this line for the address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hta-server: %v", err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	bound := ln.Addr().String()
	switch {
	case *gatewayMode:
		fmt.Printf("assignment service listening on %s (cluster gateway, %d peers)\n",
			bound, len(strings.Split(*peersSpec, ",")))
	case clusterNode != nil:
		fmt.Printf("assignment service listening on %s (cluster node %q, %d shards, Xmax=%d, buffer=%d/shard)\n",
			bound, *nodeName, *shards, *xmax, *buffer)
	case *shards > 0:
		fmt.Printf("assignment service listening on %s (streaming, %d shards, Xmax=%d, buffer=%d/shard)\n",
			bound, *shards, *xmax, *buffer)
	default:
		fmt.Printf("assignment service listening on %s (Xmax=%d, +%d random)\n", bound, *xmax, *extra)
	}
	if qtracker != nil {
		fmt.Printf("quality layer active: redundancy=%d, agg=%s, gold-rate=%.2f, quarantine-floor=%.2f\n",
			*redundancy, qtracker.Method(), *goldRate, *quarantineFloor)
	}
	if *shards > 0 && (*deadlineAware || *predictive || *learnWindows) {
		fmt.Printf("predictive scheduling: deadline-aware=%v (urgency=%s, expiry=%s), predictive=%v (horizon=%.1f), learn-windows=%v\n",
			*deadlineAware, *urgencyHorizon, *expireInterval, *predictive, *forecastHorizon, *learnWindows)
	}
	select {
	case err := <-errCh:
		log.Fatalf("hta-server: %v", err)
	case sig := <-sigs:
		fmt.Printf("\n%s: draining (grace %s)\n", sig, *grace)
		if err := shutdownGracefully(httpSrv, srv, *grace); err != nil {
			log.Printf("hta-server: shutdown: %v", err)
		}
		if *snapshotPath != "" {
			if err := saveSnapshot(srv, *snapshotPath); err != nil {
				log.Fatalf("hta-server: snapshot: %v", err)
			}
			fmt.Printf("saved engine state to %s\n", *snapshotPath)
			if qtracker != nil {
				qpath := qualitySnapshotPath(*snapshotPath)
				if err := saveQualitySnapshot(qtracker, qpath); err != nil {
					log.Fatalf("hta-server: quality snapshot: %v", err)
				}
				fmt.Printf("saved quality tracker state to %s\n", qpath)
			}
		}
	}
}

// parsePeers turns the -peers flag ("n1=http://h1:p1,n2=http://h2:p2")
// into the gateway's membership list.
func parsePeers(spec string) ([]cluster.PeerSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("-gateway requires -peers name=url,name=url")
	}
	var peers []cluster.PeerSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q, want name=url", part)
		}
		peers = append(peers, cluster.PeerSpec{Name: name, URL: url})
	}
	if len(peers) == 0 {
		return nil, errors.New("-peers named no nodes")
	}
	return peers, nil
}

// streamPreload offers a task file into a streaming backend (in-process
// engine or cluster gateway), reporting each task's fate. With the
// quality layer active each logical task is observed by the tracker
// (auto-gold marking) and replicated into k engine tasks, mirroring what
// POST /api/tasks does for runtime uploads.
func streamPreload(backend platform.StreamBackend, tr *quality.Tracker, k int, preload []*core.Task, path string) {
	if tr == nil {
		k = 1
	}
	var assigned, buffered, dropped int
	for _, t := range preload {
		if tr != nil {
			tr.ObserveTask(t.ID)
		}
		for j := 0; j < k; j++ {
			offer := t
			if tr != nil {
				cp := *t
				cp.ID = quality.ReplicaID(t.ID, j)
				offer = &cp
			}
			switch wid, err := backend.OfferTaskCtx(context.Background(), offer); {
			case err == nil && wid != "":
				assigned++
			case err == nil:
				buffered++
			case errors.Is(err, stream.ErrBufferFull):
				dropped++
			default:
				log.Fatalf("hta-server: loading tasks: %v", err)
			}
		}
	}
	fmt.Printf("streamed %d tasks from %s as %d engine tasks (%d assigned, %d buffered, %d dropped)\n",
		len(preload), path, len(preload)*k, assigned, buffered, dropped)
}

// qualitySnapshotPath derives the tracker's state file from the engine
// snapshot path ("" stays "", so no-snapshot runs skip persistence).
func qualitySnapshotPath(snapshotPath string) string {
	if snapshotPath == "" {
		return ""
	}
	return snapshotPath + ".quality"
}

// buildTracker restores the quality tracker from its snapshot when one
// exists, otherwise starts fresh.
func buildTracker(cfg quality.Config, path string) (*quality.Tracker, bool, error) {
	if path == "" {
		tr, err := quality.New(cfg)
		return tr, false, err
	}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		tr, err := quality.New(cfg)
		return tr, false, err
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	tr, err := quality.Restore(f, cfg)
	if err != nil {
		return nil, false, fmt.Errorf("restoring %s: %w", path, err)
	}
	return tr, true, nil
}

// saveQualitySnapshot writes the tracker state atomically via a temp
// file, like saveSnapshot.
func saveQualitySnapshot(tr *quality.Tracker, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := tr.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// buildShardEngine restores the sharded streaming engine from the
// snapshot when it exists, otherwise starts fresh. The snapshot's shard
// count need not match -shards: workers are re-partitioned by the ring.
func buildShardEngine(cfg shard.Config, snapshotPath string) (*shard.Engine, bool, error) {
	if snapshotPath == "" {
		e, err := shard.New(cfg)
		return e, false, err
	}
	f, err := os.Open(snapshotPath)
	if errors.Is(err, fs.ErrNotExist) {
		e, err := shard.New(cfg)
		return e, false, err
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	e, err := shard.Restore(f, cfg)
	if err != nil {
		return nil, false, fmt.Errorf("restoring %s: %w", snapshotPath, err)
	}
	return e, true, nil
}

// buildEngine restores from the snapshot when it exists, otherwise starts
// fresh.
func buildEngine(cfg adaptive.Config, snapshotPath string) (*adaptive.Engine, bool, error) {
	if snapshotPath == "" {
		e, err := adaptive.NewEngine(cfg)
		return e, false, err
	}
	f, err := os.Open(snapshotPath)
	if errors.Is(err, fs.ErrNotExist) {
		e, err := adaptive.NewEngine(cfg)
		return e, false, err
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	e, err := adaptive.Restore(f, cfg)
	if err != nil {
		return nil, false, fmt.Errorf("restoring %s: %w", snapshotPath, err)
	}
	return e, true, nil
}

// saveSnapshot writes atomically via a temp file, snapshotting through the
// server so the engine is quiesced.
func saveSnapshot(srv *platform.Server, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
