package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/platform"
	"github.com/htacs/ata/internal/trace"
	"github.com/htacs/ata/internal/workload"
)

// Multi-process cluster smoke test: build the real binary, spawn three
// -node processes plus a -gateway on ephemeral ports, replay a churn
// workload through the gateway's public API, and check that the merged
// conservation accounting balances and every process exits cleanly on
// SIGTERM. This is the one test that exercises the flag wiring, the
// address-announcement line, and the cluster RPC plane over real sockets
// between real processes.

// buildServerBinary compiles the command under test once per test run.
func buildServerBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hta-server")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hta-server: %v\n%s", err, out)
	}
	return bin
}

// serverProc is one spawned hta-server with its announced address.
type serverProc struct {
	cmd  *exec.Cmd
	addr string
}

// startServer launches the binary and scrapes the "listening on" line for
// the kernel-chosen port.
func startServer(t *testing.T, bin string, args ...string) *serverProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-trace-sample", "0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout // interleave; only scanned for the address line
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "assignment service listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				addrCh <- addr
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		errCh <- fmt.Errorf("hta-server exited before announcing an address: %v", sc.Err())
	}()
	select {
	case addr := <-addrCh:
		return &serverProc{cmd: cmd, addr: addr}
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(15 * time.Second):
		t.Fatal("timed out waiting for the listening-address line")
	}
	return nil
}

// terminate sends SIGTERM and requires a zero exit within the grace
// window — the graceful drain path, not a kill.
func (p *serverProc) terminate(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("process exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(20 * time.Second):
		p.cmd.Process.Kill()
		t.Fatal("process did not exit within 20s of SIGTERM")
	}
}

func TestClusterSmokeMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test builds and spawns the real binary")
	}
	bin := buildServerBinary(t)

	// Three single-shard nodes: the cluster, not the local shard fan-out,
	// is the parallelism under test.
	var nodes []*serverProc
	var peerParts []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("n%d", i)
		// -xmax 3 keeps cluster capacity small enough that the deadline
		// burst below must overflow into the buffers; -deadline-aware with a
		// fast sweep turns those stranded tasks into journaled expiries.
		p := startServer(t, bin, "-shards", "1", "-node", name, "-buffer", "256",
			"-xmax", "3", "-deadline-aware", "-expire-interval", "100ms")
		nodes = append(nodes, p)
		peerParts = append(peerParts, fmt.Sprintf("%s=http://%s", name, p.addr))
	}
	// The gateway traces every request (-trace-sample 1 overrides the
	// startServer default of 0) so the cross-node stitching assertions
	// below never race a sampling decision.
	gw := startServer(t, bin, "-gateway", "-peers", strings.Join(peerParts, ","), "-trace-sample", "1")

	client := platform.NewClient("http://"+gw.addr, nil)

	// Churn replay: register, offer, complete, deregister — concurrently,
	// the way real traffic arrives.
	const workers, tasks = 6, 60
	for i := 0; i < workers; i++ {
		kw := []int{i, i + 1, i + 2, i + 3, i + 4, i + 5}
		if _, err := client.Register(fmt.Sprintf("w%d", i), kw); err != nil {
			t.Fatalf("register w%d through gateway: %v", i, err)
		}
	}
	if err := client.AddTasks(genTasks(tasks)); err != nil {
		t.Fatalf("offering tasks through gateway: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				set, err := client.Tasks(id)
				if err != nil {
					errs <- fmt.Errorf("%s tasks: %w", id, err)
					return
				}
				if len(set) == 0 {
					return
				}
				if _, err := client.Complete(id, set[0].ID); err != nil {
					errs <- fmt.Errorf("%s complete: %w", id, err)
					return
				}
			}
		}(fmt.Sprintf("w%d", i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Replay a generated churn trace (the hta-gen -churn format) through
	// the gateway: arrivals register, departures leave and requeue their
	// active tasks across the surviving ring segment.
	// KeywordsPerWorker must clear the platform's paper-mandated minimum
	// of six declared interests per worker.
	gen, err := workload.NewGenerator(workload.Config{Seed: 7, KeywordsPerWorker: 6})
	if err != nil {
		t.Fatal(err)
	}
	churners := gen.Workers(8)
	churnerByID := make(map[string][]int, len(churners))
	for _, w := range churners {
		churnerByID[w.ID] = w.Keywords.Indices()
	}
	churn, err := gen.Churn(churners, 20, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	for _, ev := range churn {
		if ev.Arrive {
			if _, err := client.Register(ev.Worker, churnerByID[ev.Worker]); err != nil {
				t.Fatalf("churn arrival %s: %v", ev.Worker, err)
			}
			live++
		} else {
			if err := client.Leave(ev.Worker); err != nil {
				t.Fatalf("churn departure %s: %v", ev.Worker, err)
			}
			live--
		}
	}

	stats, err := client.ShardStats()
	if err != nil {
		t.Fatalf("merged stats through gateway: %v", err)
	}
	if !stats.Conserved {
		t.Fatalf("cluster accounting does not balance: %+v", stats.Stats)
	}
	if stats.Submitted != tasks {
		t.Fatalf("Submitted = %d, want %d", stats.Submitted, tasks)
	}
	if stats.Workers != workers+live {
		t.Fatalf("Workers = %d after churn, want %d (%d base + %d live churners)",
			stats.Workers, workers+live, workers, live)
	}
	if len(stats.PerShard) != 3 {
		t.Fatalf("merged stats cover %d shards, want 3 (one per node)", len(stats.PerShard))
	}
	if stats.Completed == 0 {
		t.Fatal("no completions were routed")
	}

	// Deadline-annotated replay: every node runs -deadline-aware with a
	// 100ms expiry sweep, so a burst of tasks carrying near-term absolute
	// deadlines — sized past the cluster's remaining slot capacity — must
	// either be assigned in time or expire out of the buffers. Expiry is
	// the journaled, conserved fate; a silent drop would show up as a
	// conservation break or an unexplained Dropped bump.
	droppedBefore, submittedBefore := stats.Dropped, stats.Submitted
	const deadlined = 90
	due := time.Now().Add(400 * time.Millisecond).UnixNano()
	dtasks := genTasks(deadlined)
	for i, task := range dtasks {
		task.ID = fmt.Sprintf("d%d", i)
		task.Deadline = due
	}
	if err := client.AddTasks(dtasks); err != nil {
		t.Fatalf("offering deadline tasks through gateway: %v", err)
	}
	expiryWait := time.Now().Add(15 * time.Second)
	var after *platform.ShardStatsView
	for time.Now().Before(expiryWait) {
		if after, err = client.ShardStats(); err != nil {
			t.Fatalf("merged stats after deadline replay: %v", err)
		}
		// The burst exceeds free capacity, so at least one task must take
		// the expiry path; once the sweep has fired past the due instant,
		// no buffered deadlined task survives.
		if after.Expired > 0 && time.Now().UnixNano() > due+(300*time.Millisecond).Nanoseconds() {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if after == nil || after.Expired == 0 {
		t.Fatal("deadline burst past cluster capacity never expired anything")
	}
	if !after.Conserved {
		t.Fatalf("deadline expiry broke cluster accounting: %+v", after.Stats)
	}
	if after.Dropped != droppedBefore {
		t.Fatalf("deadline replay dropped tasks silently: Dropped %d -> %d",
			droppedBefore, after.Dropped)
	}
	if after.Submitted != submittedBefore+deadlined {
		t.Fatalf("Submitted = %d after deadline replay, want %d",
			after.Submitted, submittedBefore+deadlined)
	}
	// The expiries must surface in the merged ops journal under the node
	// that swept them — journaled, not silent.
	expireJournaled := false
	for _, ev := range fetchEvents(t, gw.addr) {
		if ev.Type == ops.EventExpire && strings.HasPrefix(ev.Node, "n") {
			expireJournaled = true
			break
		}
	}
	if !expireJournaled {
		t.Error("tasks expired but /api/events carries no deadline_expire event from any node")
	}

	// Federated metrics: the gateway's /metrics must carry every member's
	// series under per-node labels plus its own, and the build-info /
	// uptime satellites.
	metrics := httpGetBody(t, "http://"+gw.addr+"/metrics")
	for _, want := range []string{
		`node="n0"`, `node="n1"`, `node="n2"`, `node="gateway"`,
		"hta_build_info", "hta_uptime_seconds", "# TYPE",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("federated /metrics missing %q", want)
		}
	}

	// Cross-node stitching: at least one trace fetched through
	// /debug/trace?cluster=1 must hold spans recorded on the gateway AND
	// spans recorded on a member, merged under one trace ID. Polled
	// because root spans enter the ring only after the response is
	// written.
	deadline := time.Now().Add(10 * time.Second)
	stitched := false
	for !stitched && time.Now().Before(deadline) {
		resp, err := http.Get("http://" + gw.addr + "/debug/trace?cluster=1&format=wire&n=0")
		if err != nil {
			t.Fatalf("cluster trace fetch: %v", err)
		}
		traces, err := trace.ReadWire(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding cluster traces: %v", err)
		}
		for _, tr := range traces {
			var gwSpans, nodeSpans int
			for _, sp := range tr.Spans {
				switch node, _ := sp.Attrs["node"].(string); {
				case node == "gateway":
					gwSpans++
				case strings.HasPrefix(node, "n"):
					nodeSpans++
				}
			}
			if gwSpans > 0 && nodeSpans > 0 {
				stitched = true
				break
			}
		}
		if !stitched {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !stitched {
		t.Error("no stitched trace: nothing in /debug/trace?cluster=1 spans both the gateway and a node")
	}

	// Induced failover: kill n2 outright (no graceful drain) and wait for
	// the gateway's heartbeat loop (500ms period, 3 strikes) to declare it
	// dead, requeue its tasks, and journal the failover under the lost
	// node's name.
	if err := nodes[2].cmd.Process.Kill(); err != nil {
		t.Fatalf("killing n2: %v", err)
	}
	nodes[2].cmd.Wait()
	deadline = time.Now().Add(20 * time.Second)
	failedOver := false
	for !failedOver && time.Now().Before(deadline) {
		for _, ev := range fetchEvents(t, gw.addr) {
			if ev.Type == ops.EventFailover && ev.Node == "n2" {
				failedOver = true
				break
			}
		}
		if !failedOver {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if !failedOver {
		t.Fatal("killed n2 but /api/events never recorded a failover for it")
	}

	// The failover must drag the verbose health score below perfect.
	var health ops.Health
	if err := json.Unmarshal([]byte(httpGetBody(t, "http://"+gw.addr+"/healthz?verbose=1")), &health); err != nil {
		t.Fatalf("decoding verbose healthz: %v", err)
	}
	if health.Score >= 1 || health.Events == 0 {
		t.Errorf("verbose healthz after failover: score=%g events=%d, want a penalised window", health.Score, health.Events)
	}

	// Clean shutdown: gateway first (drains routing), then the surviving
	// nodes (n2 was killed by the failover induction above).
	gw.terminate(t)
	for _, p := range nodes[:2] {
		p.terminate(t)
	}
}

// fetchEvents pulls and decodes the gateway's merged ops journal.
func fetchEvents(t *testing.T, addr string) []ops.Event {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/api/events")
	if err != nil {
		t.Fatalf("events fetch: %v", err)
	}
	defer resp.Body.Close()
	events, err := ops.ReadEvents(resp.Body)
	if err != nil {
		t.Fatalf("decoding events: %v", err)
	}
	return events
}

// httpGetBody fetches a URL and returns the body, failing the test on any
// transport error or non-200 status.
func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}
