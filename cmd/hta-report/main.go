// Command hta-report analyzes an archived online study: session archives
// written by `hta-live -out sessions.jsonl` (or crowd.WriteSessions) are
// re-aggregated into the Figure 5 totals, per-strategy curves and the
// paper's significance tests — without re-running any simulation.
//
// Usage:
//
//	hta-report -in sessions.jsonl [-minutes 30] [-chart]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/htacs/ata/internal/crowd"
	"github.com/htacs/ata/internal/plot"
)

func main() {
	in := flag.String("in", "", "session archive (JSON lines) to analyze")
	minutes := flag.Float64("minutes", 30, "session length the study used, for the time grid")
	chart := flag.Bool("chart", false, "render retention curves as an ASCII chart")
	flag.Parse()
	if *in == "" {
		log.Fatal("hta-report: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatalf("hta-report: %v", err)
	}
	study, err := crowd.ReadSessions(f)
	f.Close()
	if err != nil {
		log.Fatalf("hta-report: %v", err)
	}

	strategies := make([]crowd.Strategy, 0, len(study.Sessions))
	for _, s := range crowd.Strategies {
		if len(study.Sessions[s]) > 0 {
			strategies = append(strategies, s)
		}
	}
	for s := range study.Sessions {
		known := false
		for _, k := range strategies {
			if s == k {
				known = true
				break
			}
		}
		if !known {
			strategies = append(strategies, s)
		}
	}
	if len(strategies) == 0 {
		log.Fatal("hta-report: archive holds no sessions")
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tsessions\tcompleted\tquality%\tmean-duration(min)\ttasks/session\tavg-reward($)")
	for _, s := range strategies {
		t := study.Total(s)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.3f\n",
			s, t.Sessions, t.Completed, t.QualityPercent, t.MeanDuration, t.MeanPerSession, t.MeanTaskReward)
	}
	tw.Flush()

	// Pairwise significance tests across all recorded strategies.
	fmt.Println("\nsignificance tests:")
	for i := 0; i < len(strategies); i++ {
		for j := i + 1; j < len(strategies); j++ {
			a, b := strategies[i], strategies[j]
			if z, err := study.CompareQuality(a, b); err == nil {
				fmt.Printf("  quality %s vs %s: Z = %+.2f (one-sided p = %.3f)\n", a, b, z.Z, z.POneSided)
			}
			if u, err := study.CompareThroughput(a, b); err == nil {
				fmt.Printf("  throughput %s vs %s: U = %.0f (one-sided p = %.3f)\n", a, b, u.U, u.POneSided)
			}
			if u, err := study.CompareRetention(a, b); err == nil {
				fmt.Printf("  retention %s vs %s: U = %.0f (one-sided p = %.3f)\n", a, b, u.U, u.POneSided)
			}
		}
	}

	if *chart {
		grid := make([]float64, 0, int(*minutes))
		for m := 1.0; m <= *minutes; m++ {
			grid = append(grid, m)
		}
		series := make([]plot.Series, 0, len(strategies))
		for _, s := range strategies {
			ret := study.RetentionCurve(s, grid)
			y := make([]float64, len(ret))
			for i, p := range ret {
				y[i] = 100 * p.Fraction
			}
			series = append(series, plot.Series{Name: string(s), Y: y})
		}
		fmt.Println()
		if err := plot.Lines(os.Stdout, "retention (% sessions alive)", grid, series,
			plot.Config{YMin: 0, YMax: 105}); err != nil {
			log.Fatalf("hta-report: %v", err)
		}
	}
}
