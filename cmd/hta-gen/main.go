// Command hta-gen generates synthetic crowdsourcing workloads shaped like
// the paper's data: AMT-style task groups (shared keyword metadata,
// micro-task rewards) and synthetic workers (uniform keyword interests,
// random motivation weights). Output is JSON lines, consumable by
// hta-server and by workload.ReadTasks/ReadWorkers.
//
// Usage:
//
//	hta-gen -groups 200 -per-group 20 -tasks-out tasks.jsonl
//	hta-gen -workers 200 -workers-out workers.jsonl
//	hta-gen -workers 200 -churn 4000 -churn-out churn.jsonl
//	hta-gen -groups 200 -per-group 20 -gold 0.2 -gold-out gold.jsonl
//
// With -churn N the generator also emits a worker arrival/departure trace
// over a horizon of N logical event steps (see workload.ChurnEvent); the
// pr5 shard benchmark replays such traces to exercise assignment under
// worker churn.
//
// With -gold-out the generator samples a gold answer key over the task
// set: each task is gold with probability -gold, carrying a known answer
// in [0, -gold-options). hta-server loads the key with -gold to grade
// workers online (see internal/quality).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/htacs/ata/internal/workload"
)

func main() {
	groups := flag.Int("groups", 200, "number of task groups")
	perGroup := flag.Int("per-group", 20, "tasks per group")
	workers := flag.Int("workers", 0, "number of synthetic workers to generate")
	universe := flag.Int("universe", 100, "keyword universe size")
	kwGroup := flag.Int("kw-per-group", 5, "keywords per task group")
	kwWorker := flag.Int("kw-per-worker", 5, "keywords per worker")
	zipf := flag.Float64("zipf", 1.2, "keyword popularity skew (Zipf s)")
	seed := flag.Int64("seed", 1, "random seed")
	tasksOut := flag.String("tasks-out", "", "write tasks to this file ('-' for stdout)")
	workersOut := flag.String("workers-out", "", "write workers to this file ('-' for stdout)")
	churn := flag.Int("churn", 0, "emit a worker churn trace over this many logical steps")
	churnDepart := flag.Float64("churn-depart", 0.5, "fraction of churning workers that also depart")
	churnOut := flag.String("churn-out", "", "write the churn trace to this file ('-' for stdout)")
	goldRate := flag.Float64("gold", 0.2, "fraction of tasks marked gold with -gold-out")
	goldOptions := flag.Int("gold-options", 4, "answer alphabet size for gold tasks")
	goldOut := flag.String("gold-out", "", "write a gold answer key over the task set to this file ('-' for stdout)")
	flag.Parse()

	gen, err := workload.NewGenerator(workload.Config{
		Universe:          *universe,
		KeywordsPerGroup:  *kwGroup,
		KeywordsPerWorker: *kwWorker,
		ZipfS:             *zipf,
		Seed:              *seed,
	})
	if err != nil {
		log.Fatalf("hta-gen: %v", err)
	}
	if *tasksOut == "" && *workersOut == "" && *churnOut == "" && *goldOut == "" {
		log.Fatal("hta-gen: nothing to do; pass -tasks-out, -workers-out, -churn-out and/or -gold-out")
	}
	if *tasksOut != "" {
		tasks := gen.Tasks(*groups, *perGroup)
		if err := writeTo(*tasksOut, func(f *os.File) error {
			return workload.WriteTasks(f, tasks)
		}); err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d tasks (%d groups × %d) to %s\n",
			len(tasks), *groups, *perGroup, *tasksOut)
	}
	if *workersOut != "" {
		if *workers <= 0 {
			log.Fatal("hta-gen: -workers must be positive with -workers-out")
		}
		ws := gen.Workers(*workers)
		if err := writeTo(*workersOut, func(f *os.File) error {
			return workload.WriteWorkers(f, ws)
		}); err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d workers to %s\n", len(ws), *workersOut)
	}
	if *goldOut != "" {
		// The key is drawn over the same task IDs -tasks-out emits (same
		// seed, same generator parameters), from a derived seed so the
		// sample is independent of keyword draws.
		gold, err := workload.Gold(gen.Tasks(*groups, *perGroup), *goldRate, *goldOptions, *seed+2)
		if err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		if err := writeTo(*goldOut, func(f *os.File) error {
			return workload.WriteGold(f, gold)
		}); err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d gold answers (rate %.2f over %d tasks) to %s\n",
			len(gold), *goldRate, *groups**perGroup, *goldOut)
	}
	if *churnOut != "" {
		if *workers <= 0 {
			log.Fatal("hta-gen: -workers must be positive with -churn-out")
		}
		if *churn <= 0 {
			log.Fatal("hta-gen: -churn must be positive with -churn-out")
		}
		// The churn trace references the same worker IDs Workers(n) emits;
		// regenerate from a derived seed so -workers-out and -churn-out
		// agree whether or not both were requested in one invocation.
		churnGen, err := workload.NewGenerator(workload.Config{
			Universe:          *universe,
			KeywordsPerGroup:  *kwGroup,
			KeywordsPerWorker: *kwWorker,
			ZipfS:             *zipf,
			Seed:              *seed + 1,
		})
		if err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		events, err := churnGen.Churn(gen.Workers(*workers), *churn, *churnDepart)
		if err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		if err := writeTo(*churnOut, func(f *os.File) error {
			return workload.WriteChurn(f, events)
		}); err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d churn events over %d steps to %s\n",
			len(events), *churn, *churnOut)
	}
}

func writeTo(path string, write func(*os.File) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
