// Command hta-gen generates synthetic crowdsourcing workloads shaped like
// the paper's data: AMT-style task groups (shared keyword metadata,
// micro-task rewards) and synthetic workers (uniform keyword interests,
// random motivation weights). Output is JSON lines, consumable by
// hta-server and by workload.ReadTasks/ReadWorkers.
//
// Usage:
//
//	hta-gen -groups 200 -per-group 20 -tasks-out tasks.jsonl
//	hta-gen -workers 200 -workers-out workers.jsonl
//	hta-gen -workers 200 -churn 4000 -churn-out churn.jsonl
//	hta-gen -groups 200 -per-group 20 -gold 0.2 -gold-out gold.jsonl
//	hta-gen -groups 200 -per-group 20 -deadlines 0.5 -tasks-out tasks.jsonl
//	hta-gen -workers 200 -windows 0.5 -windows-out windows.jsonl
//
// With -churn N the generator also emits a worker arrival/departure trace
// over a horizon of N logical event steps (see workload.ChurnEvent); the
// pr5 shard benchmark replays such traces to exercise assignment under
// worker churn.
//
// With -gold-out the generator samples a gold answer key over the task
// set: each task is gold with probability -gold, carrying a known answer
// in [0, -gold-options). hta-server loads the key with -gold to grade
// workers online (see internal/quality).
//
// With -deadlines F a fraction F of the emitted tasks carries a deadline
// lead drawn uniformly from [-deadline-min, -deadline-max] — an offset
// from trace start that a replayer rebases to an absolute instant at
// offer time. With -windows F and -windows-out, a fraction F of the
// worker pool declares an availability window of uniform length in
// [-window-min, -window-max], in the same relative convention (see
// internal/schedule for how the engine consumes both).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/htacs/ata/internal/workload"
)

func main() {
	groups := flag.Int("groups", 200, "number of task groups")
	perGroup := flag.Int("per-group", 20, "tasks per group")
	workers := flag.Int("workers", 0, "number of synthetic workers to generate")
	universe := flag.Int("universe", 100, "keyword universe size")
	kwGroup := flag.Int("kw-per-group", 5, "keywords per task group")
	kwWorker := flag.Int("kw-per-worker", 5, "keywords per worker")
	zipf := flag.Float64("zipf", 1.2, "keyword popularity skew (Zipf s)")
	seed := flag.Int64("seed", 1, "random seed")
	tasksOut := flag.String("tasks-out", "", "write tasks to this file ('-' for stdout)")
	workersOut := flag.String("workers-out", "", "write workers to this file ('-' for stdout)")
	churn := flag.Int("churn", 0, "emit a worker churn trace over this many logical steps")
	churnDepart := flag.Float64("churn-depart", 0.5, "fraction of churning workers that also depart")
	churnOut := flag.String("churn-out", "", "write the churn trace to this file ('-' for stdout)")
	goldRate := flag.Float64("gold", 0.2, "fraction of tasks marked gold with -gold-out")
	goldOptions := flag.Int("gold-options", 4, "answer alphabet size for gold tasks")
	goldOut := flag.String("gold-out", "", "write a gold answer key over the task set to this file ('-' for stdout)")
	deadlineFrac := flag.Float64("deadlines", 0, "fraction of tasks annotated with a deadline lead (0 disables)")
	deadlineMin := flag.Duration("deadline-min", 5*time.Second, "minimum deadline lead (offset from trace start)")
	deadlineMax := flag.Duration("deadline-max", time.Minute, "maximum deadline lead")
	windowFrac := flag.Float64("windows", 0.5, "fraction of workers declaring an availability window with -windows-out")
	windowMin := flag.Duration("window-min", time.Minute, "minimum declared window length")
	windowMax := flag.Duration("window-max", 10*time.Minute, "maximum declared window length")
	windowsOut := flag.String("windows-out", "", "write worker availability-window declarations to this file ('-' for stdout)")
	flag.Parse()

	gen, err := workload.NewGenerator(workload.Config{
		Universe:          *universe,
		KeywordsPerGroup:  *kwGroup,
		KeywordsPerWorker: *kwWorker,
		ZipfS:             *zipf,
		Seed:              *seed,
	})
	if err != nil {
		log.Fatalf("hta-gen: %v", err)
	}
	if *tasksOut == "" && *workersOut == "" && *churnOut == "" && *goldOut == "" && *windowsOut == "" {
		log.Fatal("hta-gen: nothing to do; pass -tasks-out, -workers-out, -churn-out, -gold-out and/or -windows-out")
	}
	if *tasksOut != "" {
		tasks := gen.Tasks(*groups, *perGroup)
		if *deadlineFrac > 0 {
			// Derived seed, like the gold key: leads are independent of the
			// keyword draws, so -deadlines never perturbs the task set.
			n, err := workload.Deadlines(tasks, *deadlineFrac,
				deadlineMin.Nanoseconds(), deadlineMax.Nanoseconds(), *seed+3)
			if err != nil {
				log.Fatalf("hta-gen: %v", err)
			}
			fmt.Fprintf(os.Stderr, "annotated %d of %d tasks with deadline leads in [%s, %s]\n",
				n, len(tasks), *deadlineMin, *deadlineMax)
		}
		if err := writeTo(*tasksOut, func(f *os.File) error {
			return workload.WriteTasks(f, tasks)
		}); err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d tasks (%d groups × %d) to %s\n",
			len(tasks), *groups, *perGroup, *tasksOut)
	}
	if *workersOut != "" {
		if *workers <= 0 {
			log.Fatal("hta-gen: -workers must be positive with -workers-out")
		}
		ws := gen.Workers(*workers)
		if err := writeTo(*workersOut, func(f *os.File) error {
			return workload.WriteWorkers(f, ws)
		}); err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d workers to %s\n", len(ws), *workersOut)
	}
	if *goldOut != "" {
		// The key is drawn over the same task IDs -tasks-out emits (same
		// seed, same generator parameters), from a derived seed so the
		// sample is independent of keyword draws.
		gold, err := workload.Gold(gen.Tasks(*groups, *perGroup), *goldRate, *goldOptions, *seed+2)
		if err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		if err := writeTo(*goldOut, func(f *os.File) error {
			return workload.WriteGold(f, gold)
		}); err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d gold answers (rate %.2f over %d tasks) to %s\n",
			len(gold), *goldRate, *groups**perGroup, *goldOut)
	}
	if *windowsOut != "" {
		if *workers <= 0 {
			log.Fatal("hta-gen: -workers must be positive with -windows-out")
		}
		// Same-ID discipline as the churn trace: regenerate the pool the
		// declarations reference, sampling from a derived seed.
		decls, err := workload.Windows(gen.Workers(*workers), *windowFrac,
			windowMin.Nanoseconds(), windowMax.Nanoseconds(), *seed+4)
		if err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		if err := writeTo(*windowsOut, func(f *os.File) error {
			return workload.WriteWindows(f, decls)
		}); err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d window declarations (frac %.2f over %d workers) to %s\n",
			len(decls), *windowFrac, *workers, *windowsOut)
	}
	if *churnOut != "" {
		if *workers <= 0 {
			log.Fatal("hta-gen: -workers must be positive with -churn-out")
		}
		if *churn <= 0 {
			log.Fatal("hta-gen: -churn must be positive with -churn-out")
		}
		// The churn trace references the same worker IDs Workers(n) emits;
		// regenerate from a derived seed so -workers-out and -churn-out
		// agree whether or not both were requested in one invocation.
		churnGen, err := workload.NewGenerator(workload.Config{
			Universe:          *universe,
			KeywordsPerGroup:  *kwGroup,
			KeywordsPerWorker: *kwWorker,
			ZipfS:             *zipf,
			Seed:              *seed + 1,
		})
		if err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		events, err := churnGen.Churn(gen.Workers(*workers), *churn, *churnDepart)
		if err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		if err := writeTo(*churnOut, func(f *os.File) error {
			return workload.WriteChurn(f, events)
		}); err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d churn events over %d steps to %s\n",
			len(events), *churn, *churnOut)
	}
}

func writeTo(path string, write func(*os.File) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
