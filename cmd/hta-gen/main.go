// Command hta-gen generates synthetic crowdsourcing workloads shaped like
// the paper's data: AMT-style task groups (shared keyword metadata,
// micro-task rewards) and synthetic workers (uniform keyword interests,
// random motivation weights). Output is JSON lines, consumable by
// hta-server and by workload.ReadTasks/ReadWorkers.
//
// Usage:
//
//	hta-gen -groups 200 -per-group 20 -tasks-out tasks.jsonl
//	hta-gen -workers 200 -workers-out workers.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/htacs/ata/internal/workload"
)

func main() {
	groups := flag.Int("groups", 200, "number of task groups")
	perGroup := flag.Int("per-group", 20, "tasks per group")
	workers := flag.Int("workers", 0, "number of synthetic workers to generate")
	universe := flag.Int("universe", 100, "keyword universe size")
	kwGroup := flag.Int("kw-per-group", 5, "keywords per task group")
	kwWorker := flag.Int("kw-per-worker", 5, "keywords per worker")
	zipf := flag.Float64("zipf", 1.2, "keyword popularity skew (Zipf s)")
	seed := flag.Int64("seed", 1, "random seed")
	tasksOut := flag.String("tasks-out", "", "write tasks to this file ('-' for stdout)")
	workersOut := flag.String("workers-out", "", "write workers to this file ('-' for stdout)")
	flag.Parse()

	gen, err := workload.NewGenerator(workload.Config{
		Universe:          *universe,
		KeywordsPerGroup:  *kwGroup,
		KeywordsPerWorker: *kwWorker,
		ZipfS:             *zipf,
		Seed:              *seed,
	})
	if err != nil {
		log.Fatalf("hta-gen: %v", err)
	}
	if *tasksOut == "" && *workersOut == "" {
		log.Fatal("hta-gen: nothing to do; pass -tasks-out and/or -workers-out")
	}
	if *tasksOut != "" {
		tasks := gen.Tasks(*groups, *perGroup)
		if err := writeTo(*tasksOut, func(f *os.File) error {
			return workload.WriteTasks(f, tasks)
		}); err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d tasks (%d groups × %d) to %s\n",
			len(tasks), *groups, *perGroup, *tasksOut)
	}
	if *workersOut != "" {
		if *workers <= 0 {
			log.Fatal("hta-gen: -workers must be positive with -workers-out")
		}
		ws := gen.Workers(*workers)
		if err := writeTo(*workersOut, func(f *os.File) error {
			return workload.WriteWorkers(f, ws)
		}); err != nil {
			log.Fatalf("hta-gen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d workers to %s\n", len(ws), *workersOut)
	}
}

func writeTo(path string, write func(*os.File) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
